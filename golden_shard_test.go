package repro

import (
	"strings"
	"testing"

	"repro/internal/shard"
)

// goldenShardBytes pins the exact metered wire bytes of every shard link
// for the golden workload at Shards = 2: {R1, R2} and {S1, S2}. Sharded
// byte totals legitimately differ from the unsharded goldens — each shard
// link answers its own INFO, scatter skips non-overlapping shards, and
// per-shard replies are smaller — but for a fixed workload they are
// exactly as deterministic, and any drift in the router's scatter set,
// the assignment, or the merge protocol must fail loudly here. If a
// change is *supposed* to alter the sharded wire exchange, re-derive
// these constants and call it out in the PR.
var goldenShardBytes = map[string][2][2]int{
	"naive/intersection":     {{7523, 7483}, {3505, 9939}},
	"grid/distance":          {{2949, 1211}, {3399, 9867}},
	"mobiJoin/distance":      {{3909, 1211}, {3505, 429}},
	"upJoin/intersection":    {{3147, 641}, {1765, 1913}},
	"upJoin/distance":        {{3033, 641}, {1759, 2231}},
	"upJoin/iceberg":         {{3033, 641}, {1759, 2231}},
	"upJoin/distance/bucket": {{3055, 763}, {865, 1383}},
	"srJoin/distance":        {{2613, 1081}, {1851, 641}},
	"semiJoin/distance":      {{261, 221}, {351, 217}},
}

func goldenShardSession(t *testing.T, name string, shards int) (*Session, Algorithm, Spec) {
	return goldenReplicaSession(t, name, shards, 1)
}

func goldenReplicaSession(t *testing.T, name string, shards, replicas int) (*Session, Algorithm, Spec) {
	t.Helper()
	robjs := GaussianClusters(600, 4, 250, World, 101)
	sobjs := GaussianClusters(600, 4, 250, World, 102)
	specs := map[string]Spec{
		"intersection": {Kind: Intersection},
		"distance":     {Kind: Distance, Eps: 75},
		"iceberg":      {Kind: IcebergSemi, Eps: 75, MinMatches: 2},
	}
	algs := map[string]Algorithm{
		"naive":    Naive{},
		"grid":     Grid{},
		"mobiJoin": MobiJoin{},
		"upJoin":   UpJoin{},
		"srJoin":   SrJoin{},
		"semiJoin": SemiJoin{},
	}
	parts := strings.Split(name, "/") // alg/spec[/bucket]
	bucket := len(parts) == 3 && parts[2] == "bucket"
	sess, err := NewSession(SessionConfig{
		R: robjs, S: sobjs, Buffer: 500, Window: World,
		Seed: 7, Bucket: bucket, PublishIndexes: true,
		Shards: shards, Replicas: replicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess, algs[parts[0]], specs[parts[1]]
}

// TestGoldenShardedByteAccounting pins the sharded wire exchange:
//
//   - Shards = 1 must stay bit-identical to the unsharded protocol — the
//     1-shard router is a pure pass-through, so every {R, S} byte total
//     equals the goldenBytes table of TestGoldenByteAccounting, for the
//     complete algorithm × kind matrix.
//   - Shards = 2 must meter exactly the per-shard-link bytes recorded in
//     goldenShardBytes.
func TestGoldenShardedByteAccounting(t *testing.T) {
	for name, want := range goldenBytes {
		t.Run("shards1/"+name, func(t *testing.T) {
			sess, alg, spec := goldenShardSession(t, name, 1)
			defer sess.Close()
			res, err := sess.Run(alg, spec)
			if err != nil {
				t.Fatal(err)
			}
			got := [2]int{res.Stats.R.WireBytes, res.Stats.S.WireBytes}
			if got != want {
				t.Errorf("%s: shards=1 metered {R, S} = {%d, %d}, unsharded golden {%d, %d}",
					name, got[0], got[1], want[0], want[1])
			}
		})
	}
	for name, want := range goldenShardBytes {
		t.Run("shards2/"+name, func(t *testing.T) {
			sess, alg, spec := goldenShardSession(t, name, 2)
			defer sess.Close()
			if _, err := sess.Run(alg, spec); err != nil {
				t.Fatal(err)
			}
			rUse := sess.Env().R.(*shard.Router).ShardUsages()
			sUse := sess.Env().S.(*shard.Router).ShardUsages()
			got := [2][2]int{
				{rUse[0].WireBytes, rUse[1].WireBytes},
				{sUse[0].WireBytes, sUse[1].WireBytes},
			}
			if got != want {
				t.Errorf("%s: shards=2 metered R{%d, %d} S{%d, %d}, golden R{%d, %d} S{%d, %d}",
					name, got[0][0], got[0][1], got[1][0], got[1][1],
					want[0][0], want[0][1], want[1][0], want[1][1])
			}
			// The relation's merged usage must be exactly the sum of its
			// per-shard links — Eq. 1 accounting stays explainable shard by
			// shard. (res.Stats diffs from a snapshot taken after the INFO
			// exchange of env.prepare, so it is compared against totals via
			// the router's own aggregation, not the absolute link counters.)
			if mr := sess.Env().R.Usage().WireBytes; mr != got[0][0]+got[0][1] {
				t.Errorf("%s: merged R usage %d is not the per-shard sum %d",
					name, mr, got[0][0]+got[0][1])
			}
			if ms := sess.Env().S.Usage().WireBytes; ms != got[1][0]+got[1][1] {
				t.Errorf("%s: merged S usage %d is not the per-shard sum %d",
					name, ms, got[1][0]+got[1][1])
			}
		})
	}
}

// TestGoldenReplicatedByteAccounting pins the replicated wire exchange
// with hedging off: every probe travels exactly one replica link, and
// sequential runs pick replicas by the seeded rotation, so the *summed*
// bytes of a replicated fleet are bit-identical to the single-replica
// goldens — replication redistributes the same frames across links, it
// never adds or reshapes traffic. Any drift in the selection policy, an
// accidental duplicate dispatch, or a stray speculative request breaks
// the equality (a hedge would also trip the zero hedged-column checks).
func TestGoldenReplicatedByteAccounting(t *testing.T) {
	for name, want := range goldenBytes {
		t.Run("shards1-replicas2/"+name, func(t *testing.T) {
			sess, alg, spec := goldenReplicaSession(t, name, 1, 2)
			defer sess.Close()
			res, err := sess.Run(alg, spec)
			if err != nil {
				t.Fatal(err)
			}
			got := [2]int{res.Stats.R.WireBytes, res.Stats.S.WireBytes}
			if got != want {
				t.Errorf("%s: replicas=2 metered {R, S} = {%d, %d}, unreplicated golden {%d, %d}",
					name, got[0], got[1], want[0], want[1])
			}
			if h := res.Stats.R.HedgedWireBytes + res.Stats.S.HedgedWireBytes; h != 0 {
				t.Errorf("%s: hedging disabled, yet %d hedged wire bytes metered", name, h)
			}
		})
	}
	for name, want := range goldenShardBytes {
		t.Run("shards2-replicas2/"+name, func(t *testing.T) {
			sess, alg, spec := goldenReplicaSession(t, name, 2, 2)
			defer sess.Close()
			if _, err := sess.Run(alg, spec); err != nil {
				t.Fatal(err)
			}
			// Each ShardUsages entry is now a replica set's merged usage
			// (the sum over its two replica links); with hedging off it
			// must still equal the single-replica per-shard golden.
			rUse := sess.Env().R.(*shard.Router).ShardUsages()
			sUse := sess.Env().S.(*shard.Router).ShardUsages()
			got := [2][2]int{
				{rUse[0].WireBytes, rUse[1].WireBytes},
				{sUse[0].WireBytes, sUse[1].WireBytes},
			}
			if got != want {
				t.Errorf("%s: shards=2 replicas=2 metered R{%d, %d} S{%d, %d}, golden R{%d, %d} S{%d, %d}",
					name, got[0][0], got[0][1], got[1][0], got[1][1],
					want[0][0], want[0][1], want[1][0], want[1][1])
			}
			for _, use := range append(rUse, sUse...) {
				if use.HedgedWireBytes != 0 || use.HedgedMessages != 0 {
					t.Errorf("%s: hedging disabled, yet hedged column is {%d msgs, %d bytes}",
						name, use.HedgedMessages, use.HedgedWireBytes)
				}
			}
		})
	}
}
