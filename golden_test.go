package repro

import (
	"strings"
	"testing"
)

// goldenBytes pins the exact metered wire bytes (Eq. 1 totals, per link)
// of one fixed workload for every algorithm × join kind. The paper's
// headline metric is transferred bytes, and PR invariants promise that
// refactors of the codec, transports, or server internals never change
// what crosses the wire — this test makes any drift fail loudly. If a
// change is *supposed* to alter on-wire sizes (a protocol change), these
// constants must be re-derived and the change called out in the PR.
//
// Values were recorded from the sequential (Parallelism 1) execution;
// TestSessionParallelismMatchesSequential separately guarantees parallel
// runs meter identically.
var goldenBytes = map[string][2]int{
	"naive/intersection":     {13948, 13948},
	"naive/distance":         {14028, 14088},
	"naive/iceberg":          {14028, 14088},
	"grid/intersection":      {4182, 13434},
	"grid/distance":          {4362, 13574},
	"grid/iceberg":           {4362, 13574},
	"mobiJoin/intersection":  {4308, 4944},
	"mobiJoin/distance":      {4474, 5304},
	"mobiJoin/iceberg":       {4474, 5356},
	"upJoin/intersection":    {3566, 4622},
	"upJoin/distance":        {3558, 5040},
	"upJoin/iceberg":         {3558, 5040},
	"upJoin/distance/bucket": {3490, 4404},
	"upJoin/iceberg/bucket":  {3490, 4820},
	"srJoin/intersection":    {2454, 2434},
	"srJoin/distance":        {3472, 3428},
	"srJoin/iceberg":         {3472, 3436},
	"semiJoin/intersection":  {3190, 3280},
	"semiJoin/distance":      {3190, 3280},
}

func TestGoldenByteAccounting(t *testing.T) {
	robjs := GaussianClusters(600, 4, 250, World, 101)
	sobjs := GaussianClusters(600, 4, 250, World, 102)

	specs := map[string]Spec{
		"intersection": {Kind: Intersection},
		"distance":     {Kind: Distance, Eps: 75},
		"iceberg":      {Kind: IcebergSemi, Eps: 75, MinMatches: 2},
	}
	algs := map[string]Algorithm{
		"naive":    Naive{},
		"grid":     Grid{},
		"mobiJoin": MobiJoin{},
		"upJoin":   UpJoin{},
		"srJoin":   SrJoin{},
		"semiJoin": SemiJoin{},
	}

	for name, want := range goldenBytes {
		t.Run(name, func(t *testing.T) {
			parts := strings.Split(name, "/") // alg/spec[/bucket]
			algName, specName := parts[0], parts[1]
			bucket := len(parts) == 3 && parts[2] == "bucket"
			sess, err := NewSession(SessionConfig{
				R: robjs, S: sobjs, Buffer: 500, Window: World,
				Seed: 7, Bucket: bucket, PublishIndexes: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			res, err := sess.Run(algs[algName], specs[specName])
			if err != nil {
				t.Fatal(err)
			}
			got := [2]int{res.Stats.R.WireBytes, res.Stats.S.WireBytes}
			if got != want {
				t.Errorf("%s: metered bytes {R, S} = {%d, %d}, golden {%d, %d}",
					name, got[0], got[1], want[0], want[1])
			}
		})
	}
}
