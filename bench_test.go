package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/server"
)

// mustRemote wraps client.NewRemote for benchmarks over known-valid links.
func mustRemote(tb testing.TB, name string, rt netsim.RoundTripper, link netsim.LinkConfig, price float64) *client.Remote {
	tb.Helper()
	r, err := client.NewRemote(name, rt, link, price)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// The benchmarks below regenerate the paper's figures (DESIGN.md §6).
// Each iteration executes the full experiment once with a reduced run
// count (benchmarks measure harness throughput; cmd/figures produces the
// paper-grade averaged tables) and reports the headline metric —
// transferred bytes — via b.ReportMetric, so `go test -bench` output
// doubles as a compact reproduction record.

func benchFigure(b *testing.B, id string, fn func(harness.Config) (*harness.Table, error)) {
	b.Helper()
	cfg := harness.Defaults()
	cfg.Runs = 2
	b.ResetTimer()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := fn(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = t
	}
	b.StopTimer()
	if last != nil {
		var total, n float64
		for _, c := range last.Cells {
			total += c.Bytes
			n++
		}
		b.ReportMetric(total/n, "meanBytes")
	}
}

// BenchmarkFig6aAlphaUpJoin regenerates Figure 6(a): the α sweep for
// UpJoin across cluster counts.
func BenchmarkFig6aAlphaUpJoin(b *testing.B) { benchFigure(b, "6a", harness.Fig6a) }

// BenchmarkFig6bRhoSrJoin regenerates Figure 6(b): the ρ sweep for
// SrJoin across cluster counts.
func BenchmarkFig6bRhoSrJoin(b *testing.B) { benchFigure(b, "6b", harness.Fig6b) }

// BenchmarkFig7aBuffer100 regenerates Figure 7(a): the three algorithms
// with a 100-object device buffer.
func BenchmarkFig7aBuffer100(b *testing.B) { benchFigure(b, "7a", harness.Fig7a) }

// BenchmarkFig7bBuffer800 regenerates Figure 7(b): the three algorithms
// with an 800-object device buffer.
func BenchmarkFig7bBuffer800(b *testing.B) { benchFigure(b, "7b", harness.Fig7b) }

// BenchmarkFig8aRealData regenerates Figure 8(a): bucket versions of the
// three algorithms over railway ⋈ synthetic.
func BenchmarkFig8aRealData(b *testing.B) { benchFigure(b, "8a", harness.Fig8a) }

// BenchmarkFig8bSemiJoin regenerates Figure 8(b): UpJoin and SrJoin
// against the index-publishing SemiJoin comparator.
func BenchmarkFig8bSemiJoin(b *testing.B) { benchFigure(b, "8b", harness.Fig8b) }

// --- §3.2 pathology ablations (DESIGN.md X1-X3) --------------------------

// fig2aData builds the Figure 2(a) layout: R clustered in two opposite
// corners, S in the two other corners — NLSJ looks attractive to
// MobiJoin, yet one more split prunes everything.
func fig2aData() (r, s []geom.Object) {
	id := uint32(0)
	put := func(dst []geom.Object, cx, cy float64, n int) []geom.Object {
		for i := 0; i < n; i++ {
			dst = append(dst, geom.PointObject(id, geom.Pt(
				cx+float64(i%20)*10, cy+float64(i/20)*10)))
			id++
		}
		return dst
	}
	r = put(r, 1000, 1000, 400)
	r = put(r, 8000, 8000, 400)
	s = put(s, 1000, 8000, 40)
	s = put(s, 8000, 1000, 40)
	return r, s
}

// fig2bData builds the Figure 2(b) layout: four 500-point clusters on
// the diagonal in R and the anti-diagonal in S inside distinct
// quadrants, so HBSJ on any window covering two clusters transfers twice
// what pruning achieves.
func fig2bData() (r, s []geom.Object) {
	id := uint32(0)
	cluster := func(dst []geom.Object, cx, cy float64) []geom.Object {
		for i := 0; i < 500; i++ {
			dst = append(dst, geom.PointObject(id, geom.Pt(
				cx+float64(i%25)*8, cy+float64(i/25)*8)))
			id++
		}
		return dst
	}
	r = cluster(r, 1200, 1200)
	r = cluster(r, 6200, 6200)
	s = cluster(s, 1200, 6200)
	s = cluster(s, 6200, 1200)
	return r, s
}

func runPathology(b *testing.B, r, s []geom.Object, buffer int, alg Algorithm) int {
	b.Helper()
	sess, err := NewSession(SessionConfig{R: r, S: s, Buffer: buffer, Window: World})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run(alg, Spec{Kind: Distance, Eps: 75})
	if err != nil {
		b.Fatal(err)
	}
	return res.Stats.TotalBytes()
}

// BenchmarkX1Fig2aPathology measures the Figure 2(a) layout: MobiJoin's
// uniformity assumption must make it spend visibly more than UpJoin,
// which prunes the space after one more split.
func BenchmarkX1Fig2aPathology(b *testing.B) {
	r, s := fig2aData()
	var mobi, up int
	for i := 0; i < b.N; i++ {
		mobi = runPathology(b, r, s, 800, MobiJoin{})
		up = runPathology(b, r, s, 800, UpJoin{})
	}
	b.ReportMetric(float64(mobi), "mobiBytes")
	b.ReportMetric(float64(up), "upBytes")
}

// BenchmarkX2Fig2bBufferParadox measures the Figure 2(b) layout at two
// buffer sizes: under MobiJoin, more device memory must *increase* the
// transfer (the buffer paradox of §3.2), while UpJoin stays flat.
func BenchmarkX2Fig2bBufferParadox(b *testing.B) {
	r, s := fig2bData()
	var mobiSmall, mobiBig, upBig int
	for i := 0; i < b.N; i++ {
		mobiSmall = runPathology(b, r, s, 999, MobiJoin{})
		mobiBig = runPathology(b, r, s, 2000, MobiJoin{})
		upBig = runPathology(b, r, s, 2000, UpJoin{})
	}
	b.ReportMetric(float64(mobiSmall), "mobiBuf999Bytes")
	b.ReportMetric(float64(mobiBig), "mobiBuf2000Bytes")
	b.ReportMetric(float64(upBig), "upBuf2000Bytes")
}

// BenchmarkX3Fig4SimilarSkew measures the Figure 4 layout (matched
// 3-cluster skew in both datasets), where the paper's UpJoin keeps
// repartitioning windows it labels skewed even though the distributions
// match, while SrJoin's bitmap comparison applies physical operators
// immediately. (Our UpJoin's lookahead rule — DESIGN.md §9.2 — already
// neutralizes most of this pathology, so the two come out close.)
func BenchmarkX3Fig4SimilarSkew(b *testing.B) {
	id := uint32(0)
	cluster := func(dst []geom.Object, cx, cy float64, n int, seedStep float64) []geom.Object {
		for i := 0; i < n; i++ {
			dst = append(dst, geom.PointObject(id, geom.Pt(
				cx+float64(i%20)*seedStep, cy+float64(i/20)*seedStep)))
			id++
		}
		return dst
	}
	var r, s []geom.Object
	for _, c := range [][2]float64{{2000, 2000}, {7000, 2000}, {2000, 7000}} {
		r = cluster(r, c[0], c[1], 300, 9)
		s = cluster(s, c[0]+40, c[1]+40, 300, 9)
	}
	var up, sr int
	for i := 0; i < b.N; i++ {
		up = runPathology(b, r, s, 2000, UpJoin{})
		sr = runPathology(b, r, s, 2000, SrJoin{})
	}
	b.ReportMetric(float64(up), "upBytes")
	b.ReportMetric(float64(sr), "srBytes")
}

// BenchmarkAblationBucketVsSingle quantifies §3.1's bucket submission
// end to end: enabling buckets both amortizes per-probe headers (Eq. 6)
// and changes the optimizer's NLSJ estimates, so the net effect is
// plan-dependent — occasionally negative, when cheaper-looking NLSJ
// displaces plans that would have pruned more.
func BenchmarkAblationBucketVsSingle(b *testing.B) {
	robjs := dataset.Railway(dataset.RailwayConfig{
		Segments: 8000, Stations: 60, Degree: 2, Bounds: dataset.World, Jitter: 20}, 3)
	sobjs := GaussianClusters(500, 4, 250, World, 4)
	run := func(bucket bool) int {
		sess, err := NewSession(SessionConfig{R: robjs, S: sobjs, Buffer: 800, Window: World, Bucket: bucket})
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Run(UpJoin{}, Spec{Kind: Distance, Eps: 75})
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats.TotalBytes()
	}
	var single, bucket int
	for i := 0; i < b.N; i++ {
		single = run(false)
		bucket = run(true)
	}
	b.ReportMetric(float64(single), "singleBytes")
	b.ReportMetric(float64(bucket), "bucketBytes")
}

// BenchmarkAblationMTU contrasts the WiFi link (MTU 1500) with the
// paper's dial-up alternative (MTU 576): the smaller MTU multiplies the
// per-packet header overhead of every large transfer (Eq. 1), raising
// the value of pruning.
func BenchmarkAblationMTU(b *testing.B) {
	robjs := GaussianClusters(1000, 4, 250, World, 17)
	sobjs := GaussianClusters(1000, 4, 250, World, 18)
	run := func(link netsim.LinkConfig) int {
		srvR := server.New("R", robjs)
		srvS := server.New("S", sobjs)
		trR := netsim.Serve(srvR)
		trS := netsim.Serve(srvS)
		defer trR.Close()
		defer trS.Close()
		r := mustRemote(b, "R", trR, link, 1)
		s := mustRemote(b, "S", trS, link, 1)
		model := costmodel.Default()
		model.Link = link
		env := core.NewEnv(r, s, client.Device{BufferObjects: 800}, model, World)
		// Naive moves whole datasets in large frames, where the MTU
		// difference is visible; adaptive algorithms mostly move frames
		// below both MTUs on this workload.
		res, err := core.Naive{}.Run(context.Background(), env, Spec{Kind: Distance, Eps: 75})
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats.TotalBytes()
	}
	var wifi, dialup int
	for i := 0; i < b.N; i++ {
		wifi = run(netsim.DefaultLink())
		dialup = run(netsim.DialupLink())
	}
	b.ReportMetric(float64(wifi), "wifiBytes")
	b.ReportMetric(float64(dialup), "dialupBytes")
}

// --- concurrent execution engine ------------------------------------------

// benchParallel measures one algorithm at the given parallelism on the
// paper's clustered workload over a link with realistic wireless latency
// (RTT 300µs): the dominant cost of a join is waiting on round trips, so
// the engine's dual-server overlap and sibling fan-out translate directly
// into wall-clock time. Byte counts are reported as a metric and are
// identical across parallelism levels (the equivalence tests enforce it);
// only the time/op column should move.
func benchParallel(b *testing.B, alg core.Algorithm, spec core.Spec, parallelism int) {
	b.Helper()
	robjs := GaussianClusters(1000, 8, 250, World, 55)
	sobjs := GaussianClusters(1000, 8, 250, World, 56)
	// Servers (R-tree builds included) are constructed once outside the
	// timed loop: the benchmark isolates execution time, and only the
	// transports are per-iteration state.
	srvR := server.New("R", robjs)
	srvS := server.New("S", sobjs)
	link := netsim.DefaultLink()
	link.RTT = 300 * time.Microsecond
	workers := parallelism
	if workers < 1 {
		workers = 1
	}
	var bytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trR := netsim.ServeParallel(srvR, workers)
		trS := netsim.ServeParallel(srvS, workers)
		r := mustRemote(b, "R", trR, link, 1)
		s := mustRemote(b, "S", trS, link, 1)
		env := core.NewEnv(r, s, client.Device{BufferObjects: 400}, costmodel.Default(), World)
		env.Parallelism = parallelism
		res, err := alg.Run(context.Background(), env, spec)
		r.Close()
		s.Close()
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Stats.TotalBytes()
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes), "bytes")
}

// BenchmarkParallelUpJoin sweeps the Parallelism knob for UpJoin — the
// paper's headline algorithm — on the clustered workload. Expect
// time/op to drop substantially from p=1 to p=4 while the bytes metric
// stays constant.
func BenchmarkParallelUpJoin(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchParallel(b, core.UpJoin{}, core.Spec{Kind: core.Distance, Eps: 75}, p)
		})
	}
}

// BenchmarkParallelGrid sweeps the knob for the Grid baseline, whose 16
// independent cells are an ideal fan-out shape.
func BenchmarkParallelGrid(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchParallel(b, core.Grid{}, core.Spec{Kind: core.Distance, Eps: 75}, p)
		})
	}
}

// BenchmarkParallelNaive sweeps the knob for Naive, where the win is the
// downloads of sibling partitions overlapping each other and the
// device-side joins (the prefetch pipeline).
func BenchmarkParallelNaive(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchParallel(b, core.Naive{}, core.Spec{Kind: core.Distance, Eps: 75}, p)
		})
	}
}

// BenchmarkMultiwayChain measures the future-work three-dataset chain
// (examples/multiway) end to end.
func BenchmarkMultiwayChain(b *testing.B) {
	sets := [][]geom.Object{
		GaussianClusters(300, 4, 300, World, 11),
		GaussianClusters(500, 4, 300, World, 11),
		GaussianClusters(120, 4, 300, World, 11),
	}
	var total int
	for i := 0; i < b.N; i++ {
		remotes := make([]core.Probe, len(sets))
		for j, objs := range sets {
			tr := netsim.Serve(server.New("D", objs))
			remotes[j] = mustRemote(b, "D", tr, netsim.DefaultLink(), 1)
		}
		res, err := core.Multiway{}.RunChain(context.Background(), remotes, client.Device{BufferObjects: 800},
			costmodel.Default(), World, []float64{200, 400})
		for _, r := range remotes {
			r.Close()
		}
		if err != nil {
			b.Fatal(err)
		}
		total = res.TotalBytes()
	}
	b.ReportMetric(float64(total), "chainBytes")
}

// BenchmarkAblationGridK sweeps the Grid baseline's grid dimension,
// the k-vs-overhead trade-off discussed at the end of §3.2.
func BenchmarkAblationGridK(b *testing.B) {
	robjs := GaussianClusters(1000, 4, 250, World, 7)
	sobjs := GaussianClusters(1000, 4, 250, World, 8)
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				sess, err := NewSession(SessionConfig{R: robjs, S: sobjs, Buffer: 800, Window: World})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sess.Run(core.Grid{K: k}, Spec{Kind: Distance, Eps: 75})
				sess.Close()
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.Stats.TotalBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}
