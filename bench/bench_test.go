// Package bench holds the repository's micro and macro benchmarks for the
// request→index→reply hot path: the wire codec, the server's query
// handlers, the device-side grid join, and a full UpJoin session. These
// are the benchmarks tracked in BENCH_baseline.json (see make bench and
// docs/PERFORMANCE.md); run them with
//
//	go test -run '^$' -bench . -benchmem ./bench
//
// and compare runs with benchstat.
package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/memjoin"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

// mustRemote wraps client.NewRemote for benchmarks over known-valid links.
func mustRemote(tb testing.TB, name string, rt netsim.RoundTripper, link netsim.LinkConfig, price float64) *client.Remote {
	tb.Helper()
	r, err := client.NewRemote(name, rt, link, price)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// sink defeats dead-code elimination across benchmark iterations.
var sink int

// BenchmarkWireRoundTrip measures one request/response codec cycle as the
// transports execute it: encode a WINDOW request, decode it server-side,
// encode a 64-object OBJECTS reply, decode it client-side. Since the
// zero-allocation refactor, that path runs through the pooled append
// codec and scratch-reusing decoders, exactly as Remote and the serving
// loops drive it.
func BenchmarkWireRoundTrip(b *testing.B) {
	w := geom.R(1000, 1000, 5000, 5000)
	objs := dataset.GaussianClusters(64, 2, 300, dataset.World, 9)
	var scratch []geom.Object
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := wire.AppendWindow(bufpool.Get(), w)
		dw, err := wire.DecodeWindowLike(req, wire.MsgWindow)
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(req)
		resp := wire.AppendObjects(bufpool.Get(), objs)
		scratch, err = wire.DecodeObjectsAppend(resp, scratch[:0])
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(resp)
		sink += len(scratch) + int(dw.MinX)
	}
}

// BenchmarkServerCount measures the server's aggregate-query handlers —
// COUNT windows and RANGE-COUNT probes — end to end through Handle, the
// entry point the transports drive. Aggregates are the paper's pruning
// workhorse: a dense iceberg run issues thousands of them per join.
func BenchmarkServerCount(b *testing.B) {
	objs := dataset.GaussianClusters(20000, 8, 400, dataset.World, 11)
	srv := server.New("R", objs)
	bounds := srv.Tree().Bounds()
	var reqs [][]byte
	for _, q := range bounds.Grid(4) {
		reqs = append(reqs, wire.EncodeCount(q))
		reqs = append(reqs, wire.EncodeRangeCount(q.Center(), 300))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The serving-loop body both transports run for an AppendHandler:
		// reply into a pooled buffer, recycle once delivered.
		resp := srv.HandleAppend(reqs[i%len(reqs)], bufpool.Get())
		sink += len(resp)
		bufpool.Put(resp)
	}
}

// BenchmarkGridJoin measures the device-side spatial-hash join that HBSJ
// runs on every downloaded partition pair.
func BenchmarkGridJoin(b *testing.B) {
	r := dataset.GaussianClusters(2000, 4, 300, dataset.World, 21)
	s := dataset.GaussianClusters(2000, 4, 300, dataset.World, 22)
	pred := memjoin.WithinDist(75)
	var dst []geom.Pair
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = memjoin.GridJoin(r, s, pred, memjoin.Options{}, dst[:0])
		sink += len(dst)
	}
}

// BenchmarkSessionUpJoin measures a full UpJoin execution — the paper's
// headline algorithm — against in-process servers with no simulated
// latency, so the measured time is pure compute: tree traversal, codec,
// transport plumbing, and device-side joins.
func BenchmarkSessionUpJoin(b *testing.B) {
	robjs := dataset.GaussianClusters(1500, 6, 300, dataset.World, 31)
	sobjs := dataset.GaussianClusters(1500, 6, 300, dataset.World, 32)
	trR := netsim.Serve(server.New("R", robjs))
	trS := netsim.Serve(server.New("S", sobjs))
	defer trR.Close()
	defer trS.Close()
	r := mustRemote(b, "R", trR, netsim.DefaultLink(), 1)
	s := mustRemote(b, "S", trS, netsim.DefaultLink(), 1)
	env := core.NewEnv(r, s, client.Device{BufferObjects: 500}, costmodel.Default(), dataset.World)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.UpJoin{}.Run(context.Background(), env, core.Spec{Kind: core.Distance, Eps: 75})
		if err != nil {
			b.Fatal(err)
		}
		sink += len(res.Pairs)
	}
}

// benchSessionRTT runs one full join per iteration against in-process
// servers behind a simulated 300µs-RTT link — the regime the batching
// layer targets: with Parallelism 1 every frame is a sequential round
// trip, so wall-clock time tracks frame count almost linearly. The
// "frames" metric reports the metered message total per op so the
// reduction is visible next to the latency.
func benchSessionRTT(b *testing.B, alg core.Algorithm, batch int) {
	robjs := dataset.GaussianClusters(1500, 6, 300, dataset.World, 31)
	sobjs := dataset.GaussianClusters(1500, 6, 300, dataset.World, 32)
	link := netsim.DefaultLink()
	link.RTT = 300 * time.Microsecond
	trR := netsim.Serve(server.New("R", robjs))
	trS := netsim.Serve(server.New("S", sobjs))
	defer trR.Close()
	defer trS.Close()
	var copts []client.Option
	if batch > 1 {
		copts = append(copts, client.WithBatch(client.BatchConfig{MaxBatch: batch}))
	}
	r, err := client.NewRemote("R", trR, link, 1, copts...)
	if err != nil {
		b.Fatal(err)
	}
	s, err := client.NewRemote("S", trS, link, 1, copts...)
	if err != nil {
		b.Fatal(err)
	}
	env := core.NewEnv(r, s, client.Device{BufferObjects: 500}, costmodel.Default(), dataset.World)
	env.BatchSize = batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := alg.Run(context.Background(), env, core.Spec{Kind: core.Distance, Eps: 75})
		if err != nil {
			b.Fatal(err)
		}
		sink += len(res.Pairs)
	}
	b.StopTimer()
	u := r.Usage().Add(s.Usage())
	b.ReportMetric(float64(u.Messages)/float64(b.N), "frames/op")
}

// BenchmarkSessionUpJoinRTT pins the batching win on the paper's
// headline algorithm over a latency-bearing link.
func BenchmarkSessionUpJoinRTT(b *testing.B) {
	b.Run("batch1", func(b *testing.B) { benchSessionRTT(b, core.UpJoin{}, 1) })
	b.Run("batch16", func(b *testing.B) { benchSessionRTT(b, core.UpJoin{}, 16) })
}

// BenchmarkSessionGridRTT does the same for the grid baseline, whose
// COUNT phases batch almost perfectly.
func BenchmarkSessionGridRTT(b *testing.B) {
	b.Run("batch1", func(b *testing.B) { benchSessionRTT(b, core.Grid{}, 1) })
	b.Run("batch16", func(b *testing.B) { benchSessionRTT(b, core.Grid{}, 16) })
}

// BenchmarkWireBatchCodec measures the batch envelope codec itself:
// wrap 16 COUNT requests, decode the envelope, and demultiplex —
// the extra work a batched round trip performs over a bare one.
func BenchmarkWireBatchCodec(b *testing.B) {
	w := geom.R(1000, 1000, 5000, 5000)
	subs := make([][]byte, 16)
	for i := range subs {
		subs[i] = wire.EncodeCount(w)
	}
	var views [][]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := wire.AppendBatch(bufpool.Get(), subs)
		var err error
		views, err = wire.DecodeBatchAppend(frame, wire.MsgBatch, views[:0])
		if err != nil {
			b.Fatal(err)
		}
		sink += len(views)
		bufpool.Put(frame)
	}
}
