package bench

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/shard"
)

// BenchmarkRouterMerge measures the pooled k-way heap merge on the
// gather hot path: 16 ID-disjoint shard replies of 256 objects each,
// merged into a reused destination. The zero-allocation property is
// pinned by TestMergeObjectsZeroAlloc; this benchmark tracks the cycle
// cost so a regression back to concat+sort shows up in bench-compare.
func BenchmarkRouterMerge(b *testing.B) {
	const parts, per = 16, 256
	rng := rand.New(rand.NewSource(3))
	ids := rng.Perm(parts * per)
	replies := make([][]geom.Object, parts)
	at := 0
	for i := range replies {
		replies[i] = make([]geom.Object, per)
		for j := range replies[i] {
			id := uint32(ids[at] + 1)
			at++
			replies[i][j] = geom.Object{ID: id, MBR: geom.R(float64(id), 0, float64(id)+1, 1)}
		}
	}
	scratch := make([][]geom.Object, parts)
	var dst []geom.Object
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The merge sorts parts in place; shuffling back each iteration
		// would dominate, so hand it pre-sorted parts after round one —
		// the heap still performs the full k-way interleave.
		copy(scratch, replies)
		dst = shard.MergeObjects(dst[:0], scratch)
		sink = len(dst)
	}
}

// BenchmarkTreeScatter measures the aggregate-query scatter–gather
// against fleet size under the hierarchical aggregation tree (fanout 8):
// one COUNT plus one RANGE-COUNT over the whole space per iteration, the
// workload whose flat fan-in grows linearly with the shard count. The
// rootB/op metric reports wire bytes on the root links per iteration —
// the headline table in README.md: near-constant under the tree while
// the flat scatter's root bytes grow with N.
func BenchmarkTreeScatter(b *testing.B) {
	for _, shards := range []int{8, 64, 256} {
		for _, mode := range []struct {
			name   string
			fanout int
		}{{"tree", 8}, {"flat", 0}} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mode.name), func(b *testing.B) {
				objs := dataset.Uniform(4096, dataset.World, 21)
				router, err := shard.ServeLocal("D", objs, shard.LocalConfig{
					Shards: shards, TreeFanout: mode.fanout, Workers: 8,
					Link: netsim.DefaultLink(), Price: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer router.Close()
				ctx := context.Background()
				if _, err := router.Info(ctx); err != nil {
					b.Fatal(err)
				}
				root0 := router.LevelUsages()[0].WireBytes
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n, err := router.Count(ctx, dataset.World)
					if err != nil {
						b.Fatal(err)
					}
					m, err := router.RangeCount(ctx, geom.Pt(5000, 5000), 8000)
					if err != nil {
						b.Fatal(err)
					}
					sink = n + m
				}
				b.StopTimer()
				rootBytes := router.LevelUsages()[0].WireBytes - root0
				b.ReportMetric(float64(rootBytes)/float64(b.N), "rootB/op")
			})
		}
	}
}
