package bench

import (
	"context"
	"slices"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/shard"
)

// hedgeDelayProb and hedgeDelay shape the delay tail the hedged-read
// fixtures inject: ~5% of round trips stall for 200× the link RTT —
// the straggler regime hedging exists for, deep enough that the tail
// (not the serial RTT cost) dominates the unhedged join. The hedge
// threshold (p85 of the replica set's latency window) sits safely above
// the fast mode and below the stall, so delayed probes hedge and prompt
// ones do not.
const (
	hedgeDelayProb = 0.05
	hedgeDelay     = 20 * time.Millisecond
	hedgeRTT       = 100 * time.Microsecond
	hedgePct       = 85
)

// hedgedProbe serves objs from `replicas` identical servers, each behind
// its own independently-seeded delay-tail netsim.Faulty link. One
// replica returns the bare remote; several return a ReplicaSet with
// percentile hedging armed.
func hedgedProbe(tb testing.TB, name string, objs []geom.Object, replicas int, seed int64) core.Probe {
	tb.Helper()
	link := netsim.DefaultLink()
	link.RTT = hedgeRTT
	rems := make([]*client.Remote, replicas)
	for j := range rems {
		rt := netsim.NewFaulty(netsim.Serve(server.New(name, objs)), netsim.FaultConfig{
			Seed:      seed + int64(j),
			DelayProb: hedgeDelayProb,
			Delay:     hedgeDelay,
		})
		rem, err := client.NewRemote(name, rt, link, 1)
		if err != nil {
			tb.Fatal(err)
		}
		rems[j] = rem
	}
	if replicas == 1 {
		return rems[0]
	}
	rs, err := shard.NewReplicaSet(name, rems, shard.ReplicaConfig{HedgePct: hedgePct, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	return rs
}

// runHedgedJoins executes `runs` sequential UpJoins over fresh delay-tail
// fleets and returns the sorted per-join wall-clock durations plus the
// (identical) pair count of every run.
func runHedgedJoins(tb testing.TB, replicas, runs int) ([]time.Duration, int) {
	tb.Helper()
	robjs := dataset.GaussianClusters(300, 4, 300, dataset.World, 41)
	sobjs := dataset.GaussianClusters(300, 4, 300, dataset.World, 42)
	r := hedgedProbe(tb, "R", robjs, replicas, 7)
	s := hedgedProbe(tb, "S", sobjs, replicas, 107)
	defer r.Close()
	defer s.Close()
	env := core.NewEnv(r, s, client.Device{BufferObjects: 300}, costmodel.Default(), dataset.World)
	spec := core.Spec{Kind: core.Distance, Eps: 75}
	// One untimed warmup join fills the replica sets' latency windows
	// (percentile hedging stays disarmed until MinSamples observations),
	// so every timed run measures the steady-state policy, not the
	// cold-start ramp.
	if _, err := (core.UpJoin{}).Run(context.Background(), env, spec); err != nil {
		tb.Fatal(err)
	}
	durs := make([]time.Duration, 0, runs)
	pairs := -1
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		res, err := core.UpJoin{}.Run(context.Background(), env, spec)
		if err != nil {
			tb.Fatal(err)
		}
		durs = append(durs, time.Since(t0))
		if pairs >= 0 && len(res.Pairs) != pairs {
			tb.Fatalf("run %d: %d pairs, previous runs %d — replication changed the result", i, len(res.Pairs), pairs)
		}
		pairs = len(res.Pairs)
	}
	slices.Sort(durs)
	return durs, pairs
}

// quantileDur returns the pct-th percentile of sorted durations by
// nearest rank.
func quantileDur(sorted []time.Duration, pct float64) time.Duration {
	rank := int(float64(len(sorted))*pct/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// benchHedgedUpJoin is one arm of BenchmarkHedgedUpJoin: a full UpJoin
// per iteration over the delay-tail link, reporting tail latency
// alongside the standard ns/op.
func benchHedgedUpJoin(b *testing.B, replicas int) {
	durs, pairs := runHedgedJoins(b, replicas, b.N)
	b.ReportMetric(float64(quantileDur(durs, 99))/1e6, "p99-ms")
	b.ReportMetric(float64(quantileDur(durs, 50))/1e6, "p50-ms")
	sink += pairs
}

// BenchmarkHedgedUpJoin pins the hedged-read tail win: identical UpJoins
// over a link whose round trips stall 8% of the time, served by one
// replica (every stall is paid in full) versus two hedged replicas (a
// stalled probe races a sibling and the fastest answer wins). Compare
// the p99-ms metric across the two arms; the result pairs are identical
// by construction (asserted inside the loop).
func BenchmarkHedgedUpJoin(b *testing.B) {
	b.Run("replicas1", func(b *testing.B) { benchHedgedUpJoin(b, 1) })
	b.Run("replicas2-hedged", func(b *testing.B) { benchHedgedUpJoin(b, 2) })
}

// TestHedgedTailLatency is the non-benchmark guard on the same fixture:
// with the delay tail injected, two hedged replicas must cut the p99
// join latency to at most 75% of the single-replica run (the observed
// cut is far deeper — the bound is generous so scheduler noise cannot
// flake it), at identical result pairs.
func TestHedgedTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("tail-latency measurement needs real wall-clock runs")
	}
	const runs = 8
	plain, plainPairs := runHedgedJoins(t, 1, runs)
	hedged, hedgedPairs := runHedgedJoins(t, 2, runs)
	if plainPairs != hedgedPairs {
		t.Fatalf("replication changed the result: %d pairs unreplicated, %d hedged", plainPairs, hedgedPairs)
	}
	p99Plain := quantileDur(plain, 99)
	p99Hedged := quantileDur(hedged, 99)
	t.Logf("p99 join latency: replicas=1 %v, replicas=2 hedged %v (%.0f%% of baseline)",
		p99Plain, p99Hedged, 100*float64(p99Hedged)/float64(p99Plain))
	if float64(p99Hedged) > 0.75*float64(p99Plain) {
		t.Errorf("hedged p99 %v is not ≥25%% below unhedged p99 %v", p99Hedged, p99Plain)
	}
}
