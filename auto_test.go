package repro

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// autoWorkloads are the dataset shapes the competitive sweep runs: the
// golden clustered workload (4 tight clusters per side, independent
// centers) and a near-uniform scatter (128 loose clusters).
var autoWorkloads = map[string]struct{ k int }{
	"clustered": {k: 4},
	"scattered": {k: 128},
}

var autoSpecs = map[string]Spec{
	"intersection": {Kind: Intersection},
	"distance":     {Kind: Distance, Eps: 75},
	"iceberg":      {Kind: IcebergSemi, Eps: 75, MinMatches: 2},
}

var autoLinks = map[string]LinkConfig{
	"wifi":   {},
	"dialup": DialupLink(),
}

// TestAutoMatchesOracle: whatever operator the planner commits (or
// switches to mid-join), the result must be exactly the oracle's — the
// planner optimizes bytes, never correctness.
func TestAutoMatchesOracle(t *testing.T) {
	robjs := GaussianClusters(400, 4, 250, World, 61)
	sobjs := GaussianClusters(400, 4, 250, World, 62)
	for name, spec := range autoSpecs {
		t.Run(name, func(t *testing.T) {
			sess := newTestSession(t, SessionConfig{
				R: robjs, S: sobjs, Buffer: 300, Window: World, Seed: 7, PublishIndexes: true,
			})
			res, err := sess.Run(Auto{}, spec)
			if err != nil {
				t.Fatal(err)
			}
			want := Oracle(robjs, sobjs, spec, World)
			assertShardedResult(t, "auto/"+name, spec, res, want)
			if res.Explain == nil {
				t.Fatal("auto must attach an Explain report")
			}
			if res.Explain.Chosen == "" || len(res.Explain.Candidates) == 0 {
				t.Fatalf("Explain incomplete: chosen %q, %d candidates",
					res.Explain.Chosen, len(res.Explain.Candidates))
			}
			if len(res.Explain.Phases) == 0 {
				t.Fatal("Explain carries no phase log")
			}
			// The phase log must account for the metered traffic: the last
			// recorded cumulative wire count cannot exceed the run total.
			last := res.Explain.Phases[len(res.Explain.Phases)-1]
			if total := res.Stats.TotalBytes(); last.WireBytes > total {
				t.Fatalf("phase log claims %d cumulative wire bytes, run metered %d",
					last.WireBytes, total)
			}
			var sb strings.Builder
			res.Explain.Render(&sb)
			if !strings.Contains(sb.String(), res.Explain.Chosen) {
				t.Fatalf("rendered explain does not mention the chosen operator %q:\n%s",
					res.Explain.Chosen, sb.String())
			}
		})
	}
}

// TestAutoCompetitiveSweep is the tentpole's acceptance sweep: on every
// workload shape × join kind × link configuration, auto's metered bytes
// must land within 10% (plus a small constant for the two root COUNTs)
// of the best fixed algorithm's.
func TestAutoCompetitiveSweep(t *testing.T) {
	fixed := map[string]Algorithm{
		"naive":    Naive{},
		"grid":     Grid{},
		"mobiJoin": MobiJoin{},
		"upJoin":   UpJoin{},
		"srJoin":   SrJoin{},
		"semiJoin": SemiJoin{},
	}
	for wlName, wl := range autoWorkloads {
		robjs := GaussianClusters(600, wl.k, 250, World, 101)
		sobjs := GaussianClusters(600, wl.k, 250, World, 102)
		for specName, spec := range autoSpecs {
			for linkName, link := range autoLinks {
				name := wlName + "/" + specName + "/" + linkName
				t.Run(name, func(t *testing.T) {
					run := func(alg Algorithm) int {
						t.Helper()
						sess := newTestSession(t, SessionConfig{
							R: robjs, S: sobjs, Buffer: 500, Window: World, Seed: 7,
							PublishIndexes: true, Link: link,
						})
						res, err := sess.Run(alg, spec)
						if err != nil {
							t.Fatalf("%s: %v", alg.Name(), err)
						}
						return res.Stats.TotalBytes()
					}
					best := 0
					bestName := ""
					for algName, alg := range fixed {
						if spec.Kind == IcebergSemi && algName == "semiJoin" {
							continue // semiJoin has no iceberg mode
						}
						b := run(alg)
						if best == 0 || b < best {
							best, bestName = b, algName
						}
					}
					got := run(Auto{})
					// 10% plus the two root COUNT round trips (the only
					// observation a fixed algorithm could not also need).
					limit := int(1.10*float64(best)) + 2*230
					t.Logf("%s: auto %d vs best fixed %s %d (limit %d)",
						name, got, bestName, best, limit)
					if got > limit {
						t.Fatalf("auto metered %d bytes, best fixed (%s) %d — over the 10%% bound (limit %d)",
							got, bestName, best, limit)
					}
				})
			}
		}
	}
}

// TestAutoMidJoinReplan pins the re-planning behaviour the phase seam
// exists for: a committed NLSJ discovers — from the inner side's measured
// quadrant densities, after its outer window is already on the device —
// that finishing the probe phase is dearer than downloading the inner
// windows per quadrant, and switches operators mid-join. The workload
// makes the uniform plan-time estimate wrong on purpose: the inner
// relation is one broad cluster and most outer objects sit inside it
// (seeded identically), but a few stray outers stretch the join window
// across the whole space — so plan-time uniformity prices the probes
// low, and only the checkpoint's measured quadrant counts reveal that
// nearly every probe lands in the one dense quadrant.
func TestAutoMidJoinReplan(t *testing.T) {
	robjs := GaussianClusters(26, 1, 400, World, 9)
	for i, o := range GaussianClusters(4, 4, 1, World, 77) {
		o.ID = 100000 + uint32(i) // keep IDs disjoint from the cluster's
		robjs = append(robjs, o)
	}
	sobjs := GaussianClusters(300, 1, 400, World, 9)
	spec := Spec{Kind: Distance, Eps: 600}
	sess := newTestSession(t, SessionConfig{R: robjs, S: sobjs, Buffer: 320, Window: World, Seed: 7})
	res, err := sess.Run(Auto{Planner: plan.Planner{CommitMargin: 1}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == nil || res.Explain.Replans == 0 {
		t.Fatalf("expected a mid-join re-plan, got explain %+v", res.Explain)
	}
	var sawReplan bool
	for _, p := range res.Explain.Phases {
		if p.Kind == PhaseReplan {
			sawReplan = true
		}
	}
	if !sawReplan {
		t.Fatal("no PhaseReplan event in the phase log")
	}
	want := Oracle(robjs, sobjs, spec, World)
	assertShardedResult(t, "auto/replan", spec, res, want)
	if len(want.Pairs) == 0 {
		t.Fatal("vacuous workload: oracle found no pairs")
	}
}
