package repro

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestAutoObserverNoLeak runs the online planner with live link-stats
// observers on a parallel session and verifies that everything — worker
// pools, shard servers, and the lock-free stats plumbing — drains when
// the session closes. Mirrors the PR 5/7 sharded leak checks.
func TestAutoObserverNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	robjs := GaussianClusters(400, 4, 250, World, 61)
	sobjs := GaussianClusters(400, 4, 250, World, 62)
	link := DialupLink()
	link.RTT = time.Millisecond
	sess := newTestSession(t, SessionConfig{
		R: robjs, S: sobjs, Buffer: 300, Window: World, Seed: 7,
		PublishIndexes: true, Parallelism: 4, Link: link,
	})
	res, err := sess.Run(Auto{}, Spec{Kind: Distance, Eps: 75})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == nil {
		t.Fatal("auto returned no explain report")
	}
	sess.Close()
	waitShardedGoroutines(t, baseline)
}

// TestAutoCancelMidReplanNoLeak cancels an auto run while its phase
// machine is mid-flight — between the observe, transfer, and re-plan
// phases — and requires a prompt contextual error with no goroutine left
// behind. The workload is the mid-join re-plan demo's, so cancellation
// points cover the NLSJ checkpoint and the operator switch.
func TestAutoCancelMidReplanNoLeak(t *testing.T) {
	robjs := GaussianClusters(26, 1, 400, World, 9)
	for i, o := range GaussianClusters(4, 4, 1, World, 77) {
		o.ID = 100000 + uint32(i)
		robjs = append(robjs, o)
	}
	sobjs := GaussianClusters(300, 1, 400, World, 9)
	spec := Spec{Kind: Distance, Eps: 600}

	// Sweep the cancellation point across the run: delay 0 cancels before
	// the first observation, later delays land inside transfer phases and
	// the checkpoint re-plan.
	for _, delay := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond} {
		baseline := runtime.NumGoroutine()
		link := DefaultLink()
		link.RTT = 500 * time.Microsecond
		sess := newTestSession(t, SessionConfig{
			R: robjs, S: sobjs, Buffer: 320, Window: World, Seed: 7,
			Parallelism: 4, Link: link,
		})
		ctx, cancel := context.WithCancel(context.Background())
		if delay == 0 {
			cancel()
		} else {
			time.AfterFunc(delay, cancel)
		}
		done := make(chan error, 1)
		go func() {
			_, err := sess.RunContext(ctx, Auto{}, spec)
			done <- err
		}()
		select {
		case err := <-done:
			// A fast scheduler can finish before a late cancel lands; that
			// is fine — only a wrong error class is a failure.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("delay %v: err = %v, want context.Canceled as root cause", delay, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("delay %v: auto did not return after cancellation", delay)
		}
		cancel()
		sess.Close()
		waitShardedGoroutines(t, baseline)
	}
}
