package repro

import (
	"fmt"
	"testing"
)

// TestTreeSessionMatchesFlatAndOracle pins the tentpole's end-to-end
// guarantee at the session layer: stacking the shard fleets under a
// hierarchical aggregation tree changes where replies merge — never the
// answers. Every algorithm × dataset kind × spec runs at tree depths 1
// (fanout >= shards, the degenerate flat shape), 2, and 3, and each run
// must return exactly the local oracle's result — which the flat-router
// suite (TestShardedMatchesOracle) already pins, so tree and flat are
// transitively bit-identical.
func TestTreeSessionMatchesFlatAndOracle(t *testing.T) {
	specs := map[string]Spec{
		"intersection": {Kind: Intersection},
		"distance":     {Kind: Distance, Eps: 200},
		"iceberg":      {Kind: IcebergSemi, Eps: 200, MinMatches: 2},
	}
	algs := map[string]Algorithm{
		"grid":     Grid{},
		"upJoin":   UpJoin{},
		"srJoin":   SrJoin{},
		"semiJoin": SemiJoin{},
	}
	depths := []struct {
		name           string
		shards, fanout int
	}{
		{"depth1", 4, 4}, // fanout >= shards: degenerates to the flat router
		{"depth2", 4, 2},
		{"depth3", 8, 2},
	}
	for kindName, ds := range shardedDatasets(t) {
		robjs, sobjs := ds[0], ds[1]
		for specName, spec := range specs {
			want := Oracle(robjs, sobjs, spec, World)
			for algName, alg := range algs {
				if algName == "semiJoin" && spec.Kind == IcebergSemi {
					continue // semiJoin has no iceberg semantics
				}
				for _, d := range depths {
					name := fmt.Sprintf("%s/%s/%s/%s", kindName, specName, algName, d.name)
					t.Run(name, func(t *testing.T) {
						sess, err := NewSession(SessionConfig{
							R: robjs, S: sobjs, Buffer: 300, Window: World,
							Seed: 5, Shards: d.shards, TreeFanout: d.fanout,
							Parallelism: 4, PublishIndexes: true,
						})
						if err != nil {
							t.Fatal(err)
						}
						defer sess.Close()
						got, err := sess.Run(alg, spec)
						if err != nil {
							t.Fatal(err)
						}
						assertShardedResult(t, name, spec, got, want)
						// Multi-level topologies must surface per-level byte
						// accounting; the degenerate flat shape must not.
						if d.shards > d.fanout {
							if len(got.Stats.RLevels) < 2 || len(got.Stats.SLevels) < 2 {
								t.Fatalf("%s: per-level stats missing: R %v, S %v",
									name, got.Stats.RLevels, got.Stats.SLevels)
							}
						} else if got.Stats.RLevels != nil || got.Stats.SLevels != nil {
							t.Fatalf("%s: flat run reports tree levels: R %v, S %v",
								name, got.Stats.RLevels, got.Stats.SLevels)
						}
					})
				}
			}
		}
	}
}
