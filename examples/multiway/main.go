// Multiway: the paper's future-work extension (§6) — a chain join over
// three non-cooperative servers: "find hotels near a one-star restaurant
// that is itself near a metro station". Each link runs the full adaptive
// pairwise machinery; the device merges links on the shared dataset's
// IDs and stops early when a link comes back empty.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

func main() {
	// Three services, same city, three different owners.
	hotels := dataset.GaussianClusters(300, 4, 300, dataset.World, 11)
	restaurants := dataset.GaussianClusters(500, 4, 300, dataset.World, 11)
	stations := dataset.GaussianClusters(120, 4, 300, dataset.World, 11)

	names := []string{"hotels", "restaurants", "stations"}
	sets := [][]geom.Object{hotels, restaurants, stations}
	remotes := make([]core.Probe, len(sets))
	for i, objs := range sets {
		tr := netsim.Serve(server.New(names[i], objs))
		rem, err := client.NewRemote(names[i], tr, netsim.DefaultLink(), 1)
		if err != nil {
			log.Fatal(err)
		}
		remotes[i] = rem
	}
	defer func() {
		for _, r := range remotes {
			r.Close()
		}
	}()

	eps := []float64{200, 400} // hotel↔restaurant 200 m, restaurant↔station 400 m
	res, err := core.Multiway{Inner: core.UpJoin{}}.RunChain(context.Background(),
		remotes, client.Device{BufferObjects: 800}, costmodel.Default(), dataset.World, eps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chain result: %d (hotel, restaurant, station) tuples\n", len(res.Tuples))
	for i, st := range res.StepStats {
		fmt.Printf("link %d: %d bytes, %d queries\n", i, st.TotalBytes(), st.TotalQueries())
	}
	fmt.Printf("total: %d wire bytes\n", res.TotalBytes())

	want := core.MultiwayOracle(sets, eps, dataset.World)
	fmt.Printf("oracle agrees: %v (%d tuples)\n", len(want) == len(res.Tuples), len(want))
}
