// TCP: the same join over real sockets. Two dataset servers listen on
// loopback TCP ports (in a deployment they would be separate hosts); the
// device dials both, runs SrJoin, and the byte accounting is identical
// to the in-process transport — the metering wraps the frames, not the
// transport.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

func main() {
	robjs := dataset.GaussianClusters(800, 4, 250, dataset.World, 31)
	sobjs := dataset.GaussianClusters(800, 4, 250, dataset.World, 32)

	// Start two TCP servers, as separate services would.
	srvR, err := netsim.ListenAndServe("127.0.0.1:0", server.New("maps.example", robjs))
	if err != nil {
		log.Fatal(err)
	}
	defer srvR.Close()
	srvS, err := netsim.ListenAndServe("127.0.0.1:0", server.New("guide.example", sobjs))
	if err != nil {
		log.Fatal(err)
	}
	defer srvS.Close()
	fmt.Printf("serving R on %s, S on %s\n", srvR.Addr(), srvS.Addr())

	// The mobile device dials both servers over metered links.
	trR, err := netsim.DialTCP(srvR.Addr())
	if err != nil {
		log.Fatal(err)
	}
	trS, err := netsim.DialTCP(srvS.Addr())
	if err != nil {
		log.Fatal(err)
	}
	// Real links lose frames; the retry policy re-dials and re-issues the
	// idempotent query (retransmissions are metered like any frame).
	remR, err := client.NewRemote("maps.example", trR, netsim.DefaultLink(), 1,
		client.WithRetry(client.DefaultRetry()))
	if err != nil {
		log.Fatal(err)
	}
	remS, err := client.NewRemote("guide.example", trS, netsim.DefaultLink(), 1,
		client.WithRetry(client.DefaultRetry()))
	if err != nil {
		log.Fatal(err)
	}
	defer remR.Close()
	defer remS.Close()

	env := core.NewEnv(remR, remS, client.Device{BufferObjects: 800},
		costmodel.Default(), geom.Rect{})
	res, err := core.SrJoin{}.Run(context.Background(), env, core.Spec{Kind: core.Distance, Eps: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("srJoin over TCP: %d pairs, %d wire bytes, %d queries\n",
		len(res.Pairs), res.Stats.TotalBytes(), res.Stats.TotalQueries())
}
