// Quickstart: generate two clustered datasets, serve them from two
// in-process "remote servers", and evaluate an ε-distance join on the
// simulated mobile device with UpJoin, printing the result size and the
// full byte bill.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two 1000-point datasets, four Gaussian clusters each, independent
	// cluster centers — the synthetic workload of the paper's §5.
	hotels := repro.GaussianClusters(1000, 4, 250, repro.World, 1)
	restaurants := repro.GaussianClusters(1000, 4, 250, repro.World, 2)

	sess, err := repro.NewSession(repro.SessionConfig{
		R:      hotels,
		S:      restaurants,
		Buffer: 800, // the PDA holds at most 800 objects (40% of the data)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	spec := repro.Spec{Kind: repro.Distance, Eps: 150}
	res, err := sess.Run(repro.UpJoin{}, spec)
	if err != nil {
		log.Fatal(err)
	}

	st := res.Stats
	fmt.Printf("join found %d pairs\n", len(res.Pairs))
	fmt.Printf("total wire bytes: %d (R: %d, S: %d)\n",
		st.TotalBytes(), st.R.WireBytes, st.S.WireBytes)
	fmt.Printf("queries: %d (aggregate: %d), HBSJ: %d, NLSJ: %d, repartitions: %d, pruned: %d\n",
		st.TotalQueries(), st.AggQueries, st.HBSJ, st.NLSJ, st.Repartitions, st.Pruned)

	// Sanity: the distributed result matches a local brute-force oracle.
	oracle := repro.Oracle(hotels, restaurants, spec, repro.World)
	fmt.Printf("oracle agrees: %v\n", len(oracle.Pairs) == len(res.Pairs))
}
