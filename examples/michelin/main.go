// Michelin: the paper's motivating scenario (§1). A traveller in Athens
// holds connections to two non-cooperative services — a local map server
// with hotels and a restaurant guide — and asks "find the hotels in the
// historical center within 500 meters of a one-star restaurant". The
// query must run on the phone, and the phone pays per transferred byte.
//
// The example compares every algorithm's byte bill on the same query and
// prints a small league table.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro"
)

// city builds an "Athens": a dense historical center plus sprawl.
func city(n int, seed int64, centerBias float64) []repro.Object {
	rnd := rand.New(rand.NewSource(seed))
	objs := make([]repro.Object, n)
	center := repro.Pt(5000, 5000)
	for i := range objs {
		var x, y float64
		if rnd.Float64() < centerBias {
			x = center.X + rnd.NormFloat64()*1500
			y = center.Y + rnd.NormFloat64()*1500
		} else {
			x = rnd.Float64() * 10000
			y = rnd.Float64() * 10000
		}
		objs[i] = repro.PointObject(uint32(i), repro.Pt(clamp(x), clamp(y)))
	}
	return objs
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 10000 {
		return 10000
	}
	return v
}

func main() {
	hotels := city(1200, 7, 0.7)      // local map server: hotels
	restaurants := city(300, 8, 0.85) // guide server: one-star restaurants

	// "Historical center": the 6 km square around the city center;
	// 500 m radius at 1 unit = 1 m.
	window := repro.R(2000, 2000, 8000, 8000)
	spec := repro.Spec{Kind: repro.Distance, Eps: 500}

	algorithms := []repro.Algorithm{
		repro.Naive{},
		repro.Grid{},
		repro.MobiJoin{},
		repro.UpJoin{},
		repro.SrJoin{},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tbytes\tqueries\tpairs\tcost($ @1e-6/B)")
	var oracle int
	for _, alg := range algorithms {
		sess, err := repro.NewSession(repro.SessionConfig{
			R: hotels, S: restaurants,
			Buffer: 800,
			Window: window,
			PriceR: 1e-6, PriceS: 1e-6, // dollars per byte
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run(alg, spec)
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		if oracle == 0 {
			oracle = len(res.Pairs)
		} else if oracle != len(res.Pairs) {
			log.Fatalf("%s disagrees: %d pairs, expected %d", alg.Name(), len(res.Pairs), oracle)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.4f\n",
			alg.Name(), res.Stats.TotalBytes(), res.Stats.TotalQueries(),
			len(res.Pairs), res.Stats.MoneyCost)
	}
	w.Flush()
	fmt.Println("\nall algorithms returned the same result set; only the bill differs.")
}
