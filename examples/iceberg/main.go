// Iceberg: the iceberg distance semi-join of §1 — "find the hotels which
// are close to at least 10 restaurants". Only R objects are returned,
// and an object qualifies only with at least m matches. The NLSJ path
// exploits this with aggregate RANGE-COUNT probes: for most hotels only
// an 8-byte count crosses the link, never the matching restaurants.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	hotels := repro.GaussianClusters(400, 3, 400, repro.World, 21)
	restaurants := repro.GaussianClusters(2000, 3, 400, repro.World, 21) // co-located clusters

	for _, m := range []int{1, 5, 10, 25} {
		spec := repro.Spec{Kind: repro.IcebergSemi, Eps: 120, MinMatches: m}

		sess, err := repro.NewSession(repro.SessionConfig{
			R: hotels, S: restaurants, Buffer: 800,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run(repro.UpJoin{}, spec)
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}

		oracle := repro.Oracle(hotels, restaurants, spec, repro.World)
		fmt.Printf("m=%2d: %4d hotels qualify (oracle %4d) — %6d bytes, %d aggregate queries\n",
			m, len(res.Objects), len(oracle.Objects),
			res.Stats.TotalBytes(), res.Stats.AggQueries)
	}

	// Contrast with the pairs-based evaluation: a full distance join of
	// the same data moves every matching restaurant over the link.
	sess, err := repro.NewSession(repro.SessionConfig{R: hotels, S: restaurants, Buffer: 800})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run(repro.UpJoin{}, repro.Spec{Kind: repro.Distance, Eps: 120})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull distance join for comparison: %d pairs, %d bytes\n",
		len(res.Pairs), res.Stats.TotalBytes())
}
