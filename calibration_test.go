package repro

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/plan"
)

// TestCostModelCalibration pins how well the §3.1 estimates (Eq. 1–8, as
// hydrated by the online planner) predict the *metered* bytes of each
// fixed algorithm on the golden workload. The predictions are plan-time
// quantities — uniform inside quadrants, self-similar skew below them —
// so they are not expected to be exact; what this test freezes is the
// calibration envelope: each algorithm × kind's predicted/metered ratio
// must stay inside its pinned window. A model or estimator change that
// silently degrades (or accidentally "improves") the fit fails here,
// next to TestGoldenByteAccounting, which pins the metered side itself.
func TestCostModelCalibration(t *testing.T) {
	robjs := GaussianClusters(600, 4, 250, World, 101)
	sobjs := GaussianClusters(600, 4, 250, World, 102)
	specs := map[string]Spec{
		"intersection": {Kind: Intersection},
		"distance":     {Kind: Distance, Eps: 75},
		"iceberg":      {Kind: IcebergSemi, Eps: 75, MinMatches: 2},
	}

	quadCount := func(objs []Object, eps float64) *[4]int {
		var q [4]int
		for i, quad := range World.Quadrants() {
			w := quad.Expand(eps / 2)
			for _, o := range objs {
				if o.MBR.Intersects(w) {
					q[i]++
				}
			}
		}
		return &q
	}

	// Pinned predicted/metered ratio windows. The loose entries are
	// documented conservatisms: the partition estimate cannot see
	// within-quadrant anti-location (independent cluster centres), so it
	// over-predicts SrJoin's pruning-heavy runs; the semi-join estimate
	// assumes every target object matches some source MBR.
	type window struct{ lo, hi float64 }
	windows := map[string]window{
		"naive/intersection": {0.85, 1.0},
		"naive/distance":     {0.85, 1.0},
		"naive/iceberg":      {0.85, 1.0},
		"grid/intersection":  {1.0, 1.4},
		"grid/distance":      {1.0, 1.4},
		"grid/iceberg":       {1.0, 1.4},
		// Eq. 8 is deliberately blind to skew; the real run prunes what
		// the uniform recursion cannot, so it over-predicts ~2.7×.
		"mobiJoin/intersection": {2.2, 3.2},
		"mobiJoin/distance":     {2.2, 3.2},
		"mobiJoin/iceberg":      {2.2, 3.2},
		"upJoin/intersection":   {1.5, 3.0},
		"upJoin/distance":       {1.5, 3.0},
		"upJoin/iceberg":        {1.5, 3.0},
		"srJoin/intersection":   {2.0, 4.5},
		"srJoin/distance":       {2.0, 4.5},
		"srJoin/iceberg":        {2.0, 4.5},
		"semiJoin/intersection": {3.0, 5.0},
		"semiJoin/distance":     {3.0, 5.0},
	}

	for specName, spec := range specs {
		obs := plan.Observations{
			Window: World, NR: len(robjs), NS: len(sobjs),
			Eps: spec.Eps, Iceberg: spec.Kind == IcebergSemi,
			CountProbeR: spec.Kind == IcebergSemi,
			TreeHeightR: 2, TreeHeightS: 2, WholeSpace: true,
			Buffer: 500,
			QuadR:  quadCount(robjs, spec.Eps),
			QuadS:  quadCount(sobjs, spec.Eps),
		}
		d := plan.Planner{}.Choose(obs)
		byOp := map[plan.Op]plan.Candidate{}
		for _, c := range d.Candidates {
			byOp[c.Op] = c
		}

		// Naive has no planner candidate: it is the unbuffered HBSJ of
		// Eq. 2 — download both windows whole, join on the device.
		unit := d.Params
		unit.PriceR, unit.PriceS = 1, 1
		unit.Buffer = 0
		naiveSt := costmodel.Stats{W: World, NR: len(robjs), NS: len(sobjs), Eps: spec.Eps}
		naivePred := unit.C1(naiveSt)

		// MobiJoin follows Eq. 8's uniform recursion (2 levels) after its
		// root COUNTs.
		mobiPred := unit.C4Uniform(naiveSt, 2) + 2*unit.Taq()

		preds := map[string]float64{
			"naive":    naivePred,
			"grid":     byOp[plan.OpGrid].Bytes,
			"mobiJoin": mobiPred,
			"upJoin":   byOp[plan.OpPartition].Bytes,
			"srJoin":   byOp[plan.OpPartition].Bytes,
		}
		if c, ok := byOp[plan.OpSemiJoin]; ok {
			preds["semiJoin"] = c.Bytes
		}

		for alg, pred := range preds {
			key := alg + "/" + specName
			metered, ok := goldenBytes[key]
			if !ok {
				continue
			}
			win, ok := windows[key]
			if !ok {
				t.Errorf("%s: no calibration window pinned", key)
				continue
			}
			total := float64(metered[0] + metered[1])
			ratio := pred / total
			t.Logf("%-22s predicted %8.0f metered %6.0f ratio %5.2f (window [%.2f, %.2f])",
				key, pred, total, ratio, win.lo, win.hi)
			if ratio < win.lo || ratio > win.hi {
				t.Errorf("%s: predicted/metered ratio %.3f outside pinned window [%.2f, %.2f]",
					key, ratio, win.lo, win.hi)
			}
		}
	}
}
