package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/shard"
)

// TestReplicatedMatchesOracle is the replication correctness guarantee:
// with every shard served by a replica set (round-robin load balancing
// splitting probes across the replica links), every algorithm × dataset
// kind still returns exactly the local oracle's result, sharded or not.
func TestReplicatedMatchesOracle(t *testing.T) {
	spec := Spec{Kind: Distance, Eps: 200}
	algs := map[string]Algorithm{
		"naive":    Naive{},
		"grid":     Grid{},
		"mobiJoin": MobiJoin{},
		"upJoin":   UpJoin{},
		"srJoin":   SrJoin{},
		"semiJoin": SemiJoin{},
	}
	for kindName, ds := range shardedDatasets(t) {
		robjs, sobjs := ds[0], ds[1]
		want := Oracle(robjs, sobjs, spec, World)
		if len(want.Pairs) == 0 {
			t.Fatalf("%s: empty distance oracle makes the suite vacuous", kindName)
		}
		for algName, alg := range algs {
			for _, shards := range []int{1, 2} {
				name := fmt.Sprintf("%s/%s/shards%d/replicas2", kindName, algName, shards)
				t.Run(name, func(t *testing.T) {
					sess, err := NewSession(SessionConfig{
						R: robjs, S: sobjs, Buffer: 300, Window: World,
						Seed: 5, Shards: shards, Replicas: 2, Parallelism: 2,
						PublishIndexes: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer sess.Close()
					got, err := sess.Run(alg, spec)
					if err != nil {
						t.Fatal(err)
					}
					assertShardedResult(t, name, spec, got, want)
				})
			}
		}
	}
}

// killAfterRT lets a replica serve its first `after` round trips, then
// reroutes every subsequent one through a seeded netsim.Faulty that
// severs 100% of connections — the replica dying mid-join at a
// deterministic point in the request schedule (no sleeps, no races).
type killAfterRT struct {
	inner netsim.RoundTripper
	sever *netsim.Faulty
	after int64
	calls atomic.Int64
}

func newKillAfterRT(inner netsim.RoundTripper, after int64, seed int64) *killAfterRT {
	return &killAfterRT{
		inner: inner,
		after: after,
		sever: netsim.NewFaulty(inner, netsim.FaultConfig{
			Seed: seed, SeverProb: 1, MaxConsecutive: 1 << 30,
		}),
	}
}

func (k *killAfterRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	if k.calls.Add(1) > k.after {
		return k.sever.RoundTrip(ctx, req)
	}
	return k.inner.RoundTrip(ctx, req)
}

func (k *killAfterRT) Close() error { return k.inner.Close() }

// replicatedChaosFleet wires one relation as 2 shards × 2 replicas where
// the *second* replica of every shard dies after its first round trip.
// The per-link retry policy is deliberately tight (2 attempts), so the
// dead replica exhausts its retries fast and recovery must come from the
// replica set's failover — the layer under test.
func replicatedChaosFleet(t *testing.T, name string, objs []Object, workers int, seed int64) (*shard.Router, []*shard.ReplicaSet) {
	t.Helper()
	retry := client.RetryPolicy{MaxAttempts: 2, Backoff: 50 * time.Microsecond}
	parts := shard.Assign(objs, 2)
	sets := make([]*shard.ReplicaSet, len(parts))
	eps := make([]shard.Endpoint, len(parts))
	for i, part := range parts {
		sname := fmt.Sprintf("%s%d/2", name, i+1)
		rems := make([]*client.Remote, 2)
		for j := range rems {
			rname := fmt.Sprintf("%s-r%d", sname, j+1)
			var rt netsim.RoundTripper = netsim.ServeParallel(
				server.New(rname, part, server.PublishIndex()), workers)
			if j == 1 {
				rt = newKillAfterRT(rt, 1, seed+int64(i))
			}
			rem, err := client.NewRemote(rname, rt, netsim.DefaultLink(), 1, client.WithRetry(retry))
			if err != nil {
				t.Fatal(err)
			}
			rems[j] = rem
		}
		rset, err := shard.NewReplicaSet(sname, rems, shard.ReplicaConfig{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = rset
		eps[i] = rset
	}
	router, err := shard.NewRouter(name, eps, shard.WithParallelism(workers))
	if err != nil {
		t.Fatal(err)
	}
	return router, sets
}

// TestReplicatedKillReplicaMidJoin is the replica chaos battery: one
// replica of every shard of both relations dies after its first answer,
// for every algorithm × dataset kind × parallelism. The join must still
// complete with exactly the oracle's pairs (the sibling replica holds
// identical data), the failover path must actually be taken, and no
// goroutine may outlive the fleet.
func TestReplicatedKillReplicaMidJoin(t *testing.T) {
	spec := Spec{Kind: Distance, Eps: 200}
	algs := map[string]Algorithm{
		"naive":    Naive{},
		"grid":     Grid{},
		"mobiJoin": MobiJoin{},
		"upJoin":   UpJoin{},
		"srJoin":   SrJoin{},
		"semiJoin": SemiJoin{},
	}
	for kindName, ds := range shardedDatasets(t) {
		robjs, sobjs := ds[0], ds[1]
		want := Oracle(robjs, sobjs, spec, World)
		if len(want.Pairs) == 0 {
			t.Fatalf("%s: empty distance oracle makes the chaos suite vacuous", kindName)
		}
		for algName, alg := range algs {
			for _, par := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/par%d", kindName, algName, par)
				t.Run(name, func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					workers := par
					if workers < 1 {
						workers = 1
					}
					seed := int64(len(algName))*100 + int64(par)
					routerR, setsR := replicatedChaosFleet(t, "R", robjs, workers, seed)
					routerS, setsS := replicatedChaosFleet(t, "S", sobjs, workers, seed+10)
					env := core.NewEnv(routerR, routerS,
						client.Device{BufferObjects: 300}, costmodel.Default(), World)
					env.Seed = 5
					env.Parallelism = par

					got, err := alg.Run(context.Background(), env, spec)
					if err != nil {
						t.Fatalf("join with killed replicas: %v", err)
					}
					assertShardedResult(t, name, spec, got, want)

					var failovers, hedges int64
					for _, rs := range append(append([]*shard.ReplicaSet{}, setsR...), setsS...) {
						st := rs.Stats()
						failovers += st.Failovers
						hedges += st.Hedges
					}
					if failovers == 0 {
						t.Fatal("every shard lost a replica mid-join, yet no probe failed over")
					}
					if hedges != 0 {
						t.Fatalf("hedging is off, yet %d hedges launched", hedges)
					}

					routerR.Close()
					routerS.Close()
					waitShardedGoroutines(t, baseline)
				})
			}
		}
	}
}
