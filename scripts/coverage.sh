#!/usr/bin/env bash
# Coverage gate: run the full test suite with -coverprofile and fail when
# total statement coverage drops below the baseline floor. The floor is a
# couple of points under the measured baseline (81% when the replicated
# serving layer and its battery landed; the failure-domain layer held the
# total at ~79-80% while adding two CLI surfaces) so timing-dependent
# branches (retry backoffs, batch linger, fault injection, hedge timers,
# breaker probes) cannot flake the build, while any real coverage
# regression — a new subsystem landing without tests — still fails.
#
# New packages additionally get their own floor: a subsystem whose tests
# rot away should fail this gate even if the repository total happens to
# stay above the global bar.
set -euo pipefail

cd "$(dirname "$0")/.."
floor="${COVER_FLOOR:-79.0}"

go test -coverprofile=cover.out ./... | tee cover.txt

check() { # check <label> <observed> <floor>
  echo "$1 statement coverage: $2% (floor $3%)"
  if ! awk -v t="$2" -v f="$3" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }'; then
    echo "$1 coverage $2% fell below the $3% floor" >&2
    rm -f cover.out cover.txt
    exit 1
  fi
}

total=$(go tool cover -func=cover.out | tail -1 | awk '{print $3}' | tr -d '%')
check "total" "$total" "$floor"

# Per-package floors for the newest subsystems, parsed from the test
# run's own "ok <pkg> ... coverage: NN.N%" lines.
for gate in "repro/internal/health:82.0" "repro/internal/harness:80.0"; do
  pkg="${gate%%:*}"
  pfloor="${gate##*:}"
  pct=$(awk -v p="$pkg" '$1 == "ok" && $2 == p { for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%.*/, "", $(i + 1)); print $(i + 1) } }' cover.txt)
  check "$pkg" "${pct:-0}" "$pfloor"
done

rm -f cover.out cover.txt
