#!/usr/bin/env bash
# Coverage gate: run the full test suite with -coverprofile and fail when
# total statement coverage drops below the baseline floor. The floor is a
# couple of points under the measured baseline (81% when the replicated
# serving layer and its battery landed) so timing-dependent branches
# (retry backoffs, batch linger, fault injection, hedge timers) cannot
# flake the build, while any real coverage regression — a new subsystem
# landing without tests — still fails.
set -euo pipefail

cd "$(dirname "$0")/.."
floor="${COVER_FLOOR:-79.0}"

go test -coverprofile=cover.out ./...
total=$(go tool cover -func=cover.out | tail -1 | awk '{print $3}' | tr -d '%')
rm -f cover.out
echo "total statement coverage: ${total}% (floor ${floor}%)"
if ! awk -v t="$total" -v f="$floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }'; then
  echo "coverage ${total}% fell below the ${floor}% floor" >&2
  exit 1
fi
