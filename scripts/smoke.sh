#!/usr/bin/env bash
# End-to-end smoke: build the binaries, boot two spatialserve instances
# (plus a 2×2 sharded fleet), run spatialjoin against them over real TCP
# — unsharded, batched, and sharded, all producing the identical pair set
# — then SIGTERM every server and assert a clean drain. CI runs this on
# every push; it is also the quickest local sanity check that the
# deployable stack works.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
declare -a pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/bin/" ./cmd/...

echo "== generate datasets"
"$workdir/bin/datagen" -kind clusters -n 800 -k 4 -sigma 250 -seed 1 -out "$workdir/r.spd"
"$workdir/bin/datagen" -kind clusters -n 800 -k 4 -sigma 250 -seed 2 -out "$workdir/s.spd"

echo "== boot servers"
"$workdir/bin/spatialserve" -data "$workdir/r.spd" -addr 127.0.0.1:7461 >"$workdir/r.log" 2>&1 &
pids+=($!)
"$workdir/bin/spatialserve" -data "$workdir/s.spd" -addr 127.0.0.1:7462 >"$workdir/s.log" 2>&1 &
pids+=($!)

# Wait for both listeners to come up.
for i in $(seq 1 100); do
  if grep -q "serving" "$workdir/r.log" && grep -q "serving" "$workdir/s.log"; then
    break
  fi
  sleep 0.05
done
grep -q "serving" "$workdir/r.log" || { echo "R server never came up"; cat "$workdir/r.log"; exit 1; }
grep -q "serving" "$workdir/s.log" || { echo "S server never came up"; cat "$workdir/s.log"; exit 1; }

echo "== join over TCP"
out=$("$workdir/bin/spatialjoin" -r 127.0.0.1:7461 -s 127.0.0.1:7462 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -parallel 4 -timeout 60s)
echo "$out"
echo "$out" | grep -q "pairs" || { echo "join produced no result line"; exit 1; }
echo "$out" | grep -q "wire bytes" || { echo "join produced no accounting"; exit 1; }

echo "== batched join over TCP (-batch 16) is oracle-equal"
# The result pairs are sorted and deduplicated, so two correct runs print
# identical pair lists; only the accounting lines may differ (batching
# changes framing, never results). The unbatched sequential run is the
# oracle here — it is the paper's device, pinned byte-for-byte by the
# golden tests.
"$workdir/bin/spatialjoin" -r 127.0.0.1:7461 -s 127.0.0.1:7462 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -timeout 60s -pairs \
  | grep -E '^  ' > "$workdir/pairs.plain"
"$workdir/bin/spatialjoin" -r 127.0.0.1:7461 -s 127.0.0.1:7462 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -timeout 60s -pairs -batch 16 \
  | grep -E '^  ' > "$workdir/pairs.batched"
[ -s "$workdir/pairs.plain" ] || { echo "unbatched join produced no pairs"; exit 1; }
diff -u "$workdir/pairs.plain" "$workdir/pairs.batched" \
  || { echo "batched join diverged from unbatched result"; exit 1; }
echo "batched result identical ($(wc -l < "$workdir/pairs.plain") pairs)"

echo "== boot 2x2 shard servers"
# Each relation split across two spatialserve processes with the
# deterministic -shard i/N assignment; the join addresses each relation
# as a comma-separated shard list and must scatter-gather its way to the
# exact same pair set.
"$workdir/bin/spatialserve" -data "$workdir/r.spd" -shard 1/2 -addr 127.0.0.1:7463 >"$workdir/r1.log" 2>&1 &
pids+=($!)
"$workdir/bin/spatialserve" -data "$workdir/r.spd" -shard 2/2 -addr 127.0.0.1:7464 >"$workdir/r2.log" 2>&1 &
pids+=($!)
"$workdir/bin/spatialserve" -data "$workdir/s.spd" -shard 1/2 -addr 127.0.0.1:7465 >"$workdir/s1.log" 2>&1 &
pids+=($!)
"$workdir/bin/spatialserve" -data "$workdir/s.spd" -shard 2/2 -addr 127.0.0.1:7466 >"$workdir/s2.log" 2>&1 &
pids+=($!)
for i in $(seq 1 100); do
  if grep -q "serving" "$workdir/r1.log" && grep -q "serving" "$workdir/r2.log" \
    && grep -q "serving" "$workdir/s1.log" && grep -q "serving" "$workdir/s2.log"; then
    break
  fi
  sleep 0.05
done
for log in r1 r2 s1 s2; do
  grep -q "serving" "$workdir/$log.log" || { echo "shard server $log never came up"; cat "$workdir/$log.log"; exit 1; }
done

echo "== sharded join over TCP (2x2 shards) is oracle-equal"
"$workdir/bin/spatialjoin" \
  -shards-r 127.0.0.1:7463,127.0.0.1:7464 \
  -shards-s 127.0.0.1:7465,127.0.0.1:7466 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -parallel 4 -timeout 60s -pairs \
  | grep -E '^  ' > "$workdir/pairs.sharded"
diff -u "$workdir/pairs.plain" "$workdir/pairs.sharded" \
  || { echo "sharded join diverged from unsharded result"; exit 1; }
echo "sharded result identical ($(wc -l < "$workdir/pairs.sharded") pairs)"

echo "== SIGTERM drain"
for pid in "${pids[@]}"; do
  kill -TERM "$pid"
done
status=0
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    status=1
  fi
done
pids=()
[ "$status" -eq 0 ] || { echo "a server exited non-zero on SIGTERM"; cat "$workdir"/*.log; exit 1; }
for log in r s r1 r2 s1 s2; do
  grep -q "drained cleanly" "$workdir/$log.log" \
    || { echo "$log did not drain cleanly"; cat "$workdir/$log.log"; exit 1; }
done

echo "smoke OK"
