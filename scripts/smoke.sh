#!/usr/bin/env bash
# End-to-end smoke: build the binaries, boot two spatialserve instances
# (plus a 2×2 sharded fleet, a 4-shard-per-relation fleet stacked under
# a depth-2 aggregation tree, and a 2-shard × 2-replica fleet), run
# spatialjoin against them over real TCP — unsharded, batched, sharded,
# tree-aggregated, and replicated with one replica SIGKILLed mid-join,
# all producing the identical pair set — then exercise the multi-tenant
# spatialjoind daemon (oracle-equal results, priority isolation under
# bulk load, quota rejection with exit 4, unknown-tenant rejection),
# and finally SIGTERM every surviving server and assert a clean drain.
# CI runs this on every push; it is also the quickest local sanity
# check that the deployable stack works.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
declare -a pids=()
declare -a bulk_pids=()
victim_pid=""
daemon_pid=""
cleanup() {
  for pid in "${pids[@]:-}" "${bulk_pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  [ -n "$victim_pid" ] && kill -9 "$victim_pid" 2>/dev/null || true
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/bin/" ./cmd/...

echo "== generate datasets"
"$workdir/bin/datagen" -kind clusters -n 800 -k 4 -sigma 250 -seed 1 -out "$workdir/r.spd"
"$workdir/bin/datagen" -kind clusters -n 800 -k 4 -sigma 250 -seed 2 -out "$workdir/s.spd"

echo "== boot servers"
"$workdir/bin/spatialserve" -data "$workdir/r.spd" -addr 127.0.0.1:7461 >"$workdir/r.log" 2>&1 &
pids+=($!)
"$workdir/bin/spatialserve" -data "$workdir/s.spd" -addr 127.0.0.1:7462 >"$workdir/s.log" 2>&1 &
pids+=($!)

# Wait for both listeners to come up.
for i in $(seq 1 100); do
  if grep -q "serving" "$workdir/r.log" && grep -q "serving" "$workdir/s.log"; then
    break
  fi
  sleep 0.05
done
grep -q "serving" "$workdir/r.log" || { echo "R server never came up"; cat "$workdir/r.log"; exit 1; }
grep -q "serving" "$workdir/s.log" || { echo "S server never came up"; cat "$workdir/s.log"; exit 1; }

echo "== join over TCP"
out=$("$workdir/bin/spatialjoin" -r 127.0.0.1:7461 -s 127.0.0.1:7462 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -parallel 4 -timeout 60s)
echo "$out"
echo "$out" | grep -q "pairs" || { echo "join produced no result line"; exit 1; }
echo "$out" | grep -q "wire bytes" || { echo "join produced no accounting"; exit 1; }

echo "== batched join over TCP (-batch 16) is oracle-equal"
# The result pairs are sorted and deduplicated, so two correct runs print
# identical pair lists; only the accounting lines may differ (batching
# changes framing, never results). The unbatched sequential run is the
# oracle here — it is the paper's device, pinned byte-for-byte by the
# golden tests.
"$workdir/bin/spatialjoin" -r 127.0.0.1:7461 -s 127.0.0.1:7462 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -timeout 60s -pairs \
  | grep -E '^  ' > "$workdir/pairs.plain"
"$workdir/bin/spatialjoin" -r 127.0.0.1:7461 -s 127.0.0.1:7462 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -timeout 60s -pairs -batch 16 \
  | grep -E '^  ' > "$workdir/pairs.batched"
[ -s "$workdir/pairs.plain" ] || { echo "unbatched join produced no pairs"; exit 1; }
diff -u "$workdir/pairs.plain" "$workdir/pairs.batched" \
  || { echo "batched join diverged from unbatched result"; exit 1; }
echo "batched result identical ($(wc -l < "$workdir/pairs.plain") pairs)"

echo "== boot 2x2 shard servers"
# Each relation split across two spatialserve processes with the
# deterministic -shard i/N assignment; the join addresses each relation
# as a comma-separated shard list and must scatter-gather its way to the
# exact same pair set.
"$workdir/bin/spatialserve" -data "$workdir/r.spd" -shard 1/2 -addr 127.0.0.1:7463 >"$workdir/r1.log" 2>&1 &
pids+=($!)
"$workdir/bin/spatialserve" -data "$workdir/r.spd" -shard 2/2 -addr 127.0.0.1:7464 >"$workdir/r2.log" 2>&1 &
pids+=($!)
"$workdir/bin/spatialserve" -data "$workdir/s.spd" -shard 1/2 -addr 127.0.0.1:7465 >"$workdir/s1.log" 2>&1 &
pids+=($!)
"$workdir/bin/spatialserve" -data "$workdir/s.spd" -shard 2/2 -addr 127.0.0.1:7466 >"$workdir/s2.log" 2>&1 &
pids+=($!)
for i in $(seq 1 100); do
  if grep -q "serving" "$workdir/r1.log" && grep -q "serving" "$workdir/r2.log" \
    && grep -q "serving" "$workdir/s1.log" && grep -q "serving" "$workdir/s2.log"; then
    break
  fi
  sleep 0.05
done
for log in r1 r2 s1 s2; do
  grep -q "serving" "$workdir/$log.log" || { echo "shard server $log never came up"; cat "$workdir/$log.log"; exit 1; }
done

echo "== sharded join over TCP (2x2 shards) is oracle-equal"
"$workdir/bin/spatialjoin" \
  -shards-r 127.0.0.1:7463,127.0.0.1:7464 \
  -shards-s 127.0.0.1:7465,127.0.0.1:7466 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -parallel 4 -timeout 60s -pairs \
  | grep -E '^  ' > "$workdir/pairs.sharded"
diff -u "$workdir/pairs.plain" "$workdir/pairs.sharded" \
  || { echo "sharded join diverged from unsharded result"; exit 1; }
echo "sharded result identical ($(wc -l < "$workdir/pairs.sharded") pairs)"

echo "== boot 4-shard fleets for the aggregation tree"
# Four shard processes per relation; with -tree-fanout 2 the device
# stacks each relation's endpoints under a depth-2 aggregation tree
# (two interior aggregators per relation), so interior partial merges
# run over real TCP. Same exact pair set as every other topology.
for i in 1 2 3 4; do
  "$workdir/bin/spatialserve" -data "$workdir/r.spd" -shard "$i/4" \
    -addr "127.0.0.1:$((7474 + i))" >"$workdir/rt$i.log" 2>&1 &
  pids+=($!)
  "$workdir/bin/spatialserve" -data "$workdir/s.spd" -shard "$i/4" \
    -addr "127.0.0.1:$((7478 + i))" >"$workdir/st$i.log" 2>&1 &
  pids+=($!)
done
for i in $(seq 1 100); do
  up=1
  for log in rt1 rt2 rt3 rt4 st1 st2 st3 st4; do
    grep -q "serving" "$workdir/$log.log" || up=0
  done
  [ "$up" = 1 ] && break
  sleep 0.05
done
for log in rt1 rt2 rt3 rt4 st1 st2 st3 st4; do
  grep -q "serving" "$workdir/$log.log" || { echo "tree shard server $log never came up"; cat "$workdir/$log.log"; exit 1; }
done

echo "== depth-2 tree join over TCP (-tree-fanout 2) is oracle-equal"
tree_out=$("$workdir/bin/spatialjoin" \
  -shards-r 127.0.0.1:7475,127.0.0.1:7476,127.0.0.1:7477,127.0.0.1:7478 \
  -shards-s 127.0.0.1:7479,127.0.0.1:7480,127.0.0.1:7481,127.0.0.1:7482 \
  -tree-fanout 2 \
  -alg upjoin -kind distance -eps 75 -buffer 500 -parallel 4 -timeout 60s -pairs)
echo "$tree_out" | grep -q "tree levels" || { echo "tree join printed no per-level accounting"; exit 1; }
echo "$tree_out" | grep -E '^  ' > "$workdir/pairs.tree"
diff -u "$workdir/pairs.plain" "$workdir/pairs.tree" \
  || { echo "tree join diverged from unsharded result"; exit 1; }
echo "tree result identical ($(wc -l < "$workdir/pairs.tree") pairs)"

echo "== boot 2-shard x 2-replica fleet"
# Every shard of both relations is served by two replica processes with
# identical data (-replica r/M is a name-only label); spatialjoin joins
# the replica addresses of one shard with "+". The second replica of R's
# first shard is the designated victim: it is SIGKILLed while the join is
# running, and the replica set must fail the affected probes over to its
# sibling without changing a single result pair.
declare -A rep_addr=(
  [r1a]=127.0.0.1:7467 [r1b]=127.0.0.1:7468
  [r2a]=127.0.0.1:7469 [r2b]=127.0.0.1:7470
  [s1a]=127.0.0.1:7471 [s1b]=127.0.0.1:7472
  [s2a]=127.0.0.1:7473 [s2b]=127.0.0.1:7474
)
for rep in r1a r1b r2a r2b s1a s1b s2a s2b; do
  rel=${rep:0:1}; sh=${rep:1:1}
  case ${rep:2:1} in a) rr=1 ;; *) rr=2 ;; esac
  "$workdir/bin/spatialserve" -data "$workdir/$rel.spd" -shard "$sh/2" -replica "$rr/2" \
    -addr "${rep_addr[$rep]}" >"$workdir/$rep.log" 2>&1 &
  if [ "$rep" = r1b ]; then
    victim_pid=$!
    disown "$victim_pid" # silence bash's job-control notice when it is SIGKILLed
  else
    pids+=($!)
  fi
done
for i in $(seq 1 100); do
  up=1
  for rep in r1a r1b r2a r2b s1a s1b s2a s2b; do
    grep -q "serving" "$workdir/$rep.log" || up=0
  done
  [ "$up" = 1 ] && break
  sleep 0.05
done
for rep in r1a r1b r2a r2b s1a s1b s2a s2b; do
  grep -q "serving" "$workdir/$rep.log" || { echo "replica server $rep never came up"; cat "$workdir/$rep.log"; exit 1; }
done

echo "== replicated join with one replica SIGKILLed mid-join is oracle-equal"
"$workdir/bin/spatialjoin" \
  -shards-r "${rep_addr[r1a]}+${rep_addr[r1b]},${rep_addr[r2a]}+${rep_addr[r2b]}" \
  -shards-s "${rep_addr[s1a]}+${rep_addr[s1b]},${rep_addr[s2a]}+${rep_addr[s2b]}" \
  -alg naive -kind distance -eps 75 -buffer 500 -timeout 60s -pairs -hedge-pct 99 \
  > "$workdir/join.replicated" 2>&1 &
join_pid=$!
sleep 0.05
kill -9 "$victim_pid"
if ! wait "$join_pid"; then
  echo "replicated join failed after replica kill"; cat "$workdir/join.replicated"; exit 1
fi
grep -E '^  ' "$workdir/join.replicated" > "$workdir/pairs.replicated"
diff -u "$workdir/pairs.plain" "$workdir/pairs.replicated" \
  || { echo "replicated join diverged after replica kill"; cat "$workdir/join.replicated"; exit 1; }
echo "replicated result identical ($(wc -l < "$workdir/pairs.replicated") pairs, replica r1b killed)"

echo "== boot multi-tenant daemon"
# One spatialjoind over the same datasets, three service classes: "fast"
# is the strict-priority interactive tenant, "bulk" the background load,
# "capped" a tenant whose fleet-wide byte quota covers roughly one join
# (~27k wire bytes on this workload), so within a few runs it must be
# rejected with the typed quota error → exit 4.
"$workdir/bin/spatialjoind" -data-r "$workdir/r.spd" -data-s "$workdir/s.spd" \
  -addr 127.0.0.1:7483 -buffer 500 -batch 16 -parallel 4 -rtt 2ms \
  -tenants "fast:prio=10;bulk:weight=1;capped:quota=30000" \
  >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!
for i in $(seq 1 100); do
  grep -q "serving" "$workdir/daemon.log" && break
  sleep 0.05
done
grep -q "serving" "$workdir/daemon.log" || { echo "daemon never came up"; cat "$workdir/daemon.log"; exit 1; }

echo "== daemon join (tenant fast) is oracle-equal"
"$workdir/bin/spatialjoin" -connect 127.0.0.1:7483 -tenant fast \
  -alg upjoin -kind distance -eps 75 -pairs \
  | grep -E '^  ' > "$workdir/pairs.daemon"
diff -u "$workdir/pairs.plain" "$workdir/pairs.daemon" \
  || { echo "daemon join diverged from device result"; exit 1; }
echo "daemon result identical ($(wc -l < "$workdir/pairs.daemon") pairs)"

echo "== high-priority latency under bulk load"
# Wall time of five interactive joins, solo vs. with two bulk clients
# hammering the daemon. The priority scheduler must keep the interactive
# tenant's probes entering every link envelope first, so the loaded time
# stays within 1.5x solo (plus a constant guard for process-spawn noise).
probe_ms() {
  local t0 t1
  t0=$(date +%s%N)
  for _ in 1 2 3 4 5; do
    "$workdir/bin/spatialjoin" -connect 127.0.0.1:7483 -tenant fast \
      -alg upjoin -kind distance -eps 75 >/dev/null
  done
  t1=$(date +%s%N)
  echo $(( (t1 - t0) / 1000000 ))
}
probe_ms >/dev/null # warmup
solo_ms=$(probe_ms)
for _ in 1 2; do
  ( while :; do
      "$workdir/bin/spatialjoin" -connect 127.0.0.1:7483 -tenant bulk \
        -alg upjoin -kind distance -eps 120 >/dev/null 2>&1 || exit 0
    done ) &
  bulk_pids+=($!)
done
sleep 0.2 # let the bulk backlog build
loaded_ms=$(probe_ms)
for pid in "${bulk_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
wait "${bulk_pids[@]}" 2>/dev/null || true
bulk_pids=()
limit_ms=$(( solo_ms * 3 / 2 + 200 ))
echo "interactive: solo ${solo_ms}ms, under bulk load ${loaded_ms}ms (limit ${limit_ms}ms)"
[ "$loaded_ms" -le "$limit_ms" ] \
  || { echo "high-priority tenant slowed beyond 1.5x under bulk load"; exit 1; }

echo "== quota tenant is rejected with exit 4"
quota_hit=0
for i in 1 2 3 4 5; do
  set +e
  "$workdir/bin/spatialjoin" -connect 127.0.0.1:7483 -tenant capped \
    -alg upjoin -kind distance -eps 75 >"$workdir/quota.out" 2>&1
  rc=$?
  set -e
  if [ "$rc" -eq 4 ]; then quota_hit=1; break; fi
  [ "$rc" -eq 0 ] || { echo "capped tenant failed with unexpected code $rc"; cat "$workdir/quota.out"; exit 1; }
done
[ "$quota_hit" = 1 ] || { echo "capped tenant never hit its quota"; exit 1; }
grep -q "over byte quota" "$workdir/quota.out" \
  || { echo "quota rejection lacked the spent/quota message"; cat "$workdir/quota.out"; exit 1; }
echo "quota rejection on run $i (exit 4)"

echo "== other tenants still serve after the quota rejection"
"$workdir/bin/spatialjoin" -connect 127.0.0.1:7483 -tenant fast \
  -alg upjoin -kind distance -eps 75 -pairs \
  | grep -E '^  ' > "$workdir/pairs.postquota"
diff -u "$workdir/pairs.plain" "$workdir/pairs.postquota" \
  || { echo "fast tenant diverged after quota rejection"; exit 1; }

echo "== unknown tenant is rejected"
set +e
"$workdir/bin/spatialjoin" -connect 127.0.0.1:7483 -tenant ghost \
  -alg upjoin -kind distance -eps 75 >"$workdir/ghost.out" 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || { echo "unknown tenant got exit $rc, want 1"; cat "$workdir/ghost.out"; exit 1; }
grep -q "unknown tenant" "$workdir/ghost.out" \
  || { echo "unknown-tenant error missing"; cat "$workdir/ghost.out"; exit 1; }

echo "== daemon SIGTERM drain"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "daemon exited non-zero on SIGTERM"; cat "$workdir/daemon.log"; exit 1; }
grep -q "drained cleanly" "$workdir/daemon.log" \
  || { echo "daemon did not drain cleanly"; cat "$workdir/daemon.log"; exit 1; }
daemon_pid=""

echo "== SIGTERM drain"
for pid in "${pids[@]}"; do
  kill -TERM "$pid"
done
status=0
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    status=1
  fi
done
pids=()
[ "$status" -eq 0 ] || { echo "a server exited non-zero on SIGTERM"; cat "$workdir"/*.log; exit 1; }
# Every server except the SIGKILLed victim (r1b) must report a clean
# drain — including the replicas that absorbed the victim's failed-over
# probes.
for log in r s r1 r2 s1 s2 rt1 rt2 rt3 rt4 st1 st2 st3 st4 r1a r2a r2b s1a s1b s2a s2b; do
  grep -q "drained cleanly" "$workdir/$log.log" \
    || { echo "$log did not drain cleanly"; cat "$workdir/$log.log"; exit 1; }
done

echo "smoke OK"
