# Development entry points. CI runs the same commands (.github/workflows).

GO ?= go
DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test race bench bench-smoke bench-compare fuzz smoke cover test-flaky chaos fmt vet lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the tracked hot-path benchmarks (bench/) with -benchmem and
# records the medians as BENCH_<date>.json. Compare two runs with
# benchstat, or diff the JSON against BENCH_baseline.json — see
# docs/PERFORMANCE.md.
# Two steps, not a pipeline: a failing benchmark run must fail make
# instead of feeding partial output to benchjson.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 6 ./bench > bench.out.tmp
	$(GO) run ./cmd/benchjson < bench.out.tmp > BENCH_$(DATE).json
	@rm -f bench.out.tmp
	@echo wrote BENCH_$(DATE).json

# bench-smoke is the CI guard: every benchmark in the repository must at
# least execute (one iteration), so bit-rotted benchmarks fail the build.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-compare is the regression gate: run a quick fresh pass of the
# tracked benchmarks and diff the medians against BENCH_baseline.json.
# Exits 1 when any time or allocation median regresses beyond
# BENCH_THRESHOLD percent (default 30 — generous on purpose: shared CI
# runners are noisy, and the gate exists to catch order-of-magnitude
# mistakes, not 5% drift). The hedged-replica benchmarks race real
# wall-clock timers, so their medians move with machine load: they are
# reported but excluded from the gate (-skip Hedged). CI runs this as a
# blocking job; locally it is the fastest "did I slow something down"
# check.
BENCH_THRESHOLD ?= 30
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 -benchtime 0.2s ./bench > bench.cmp.tmp
	$(GO) run ./cmd/benchjson < bench.cmp.tmp > bench.cmp.json
	@rm -f bench.cmp.tmp
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) -skip Hedged BENCH_baseline.json bench.cmp.json; \
	  status=$$?; rm -f bench.cmp.json; exit $$status

# fuzz runs every fuzz target briefly — the codec-hardening pass CI runs
# on each push. Longer local campaigns: go test -fuzz <Target> -fuzztime 5m.
fuzz:
	@for pkg in ./internal/wire ./internal/server; do \
	  for f in $$($(GO) test -list 'Fuzz.*' $$pkg | grep '^Fuzz'); do \
	    echo "== $$pkg $$f"; \
	    $(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime 10s $$pkg || exit 1; \
	  done; \
	done

# smoke is the end-to-end check CI runs: real binaries, real TCP, real
# signals (boot spatialserve fleets — unsharded and 2×2 sharded — join,
# SIGTERM drain).
smoke:
	./scripts/smoke.sh

# test-flaky hammers the chaos and replica batteries — the suites whose
# failures would be schedule-dependent if the failover/hedging plumbing
# ever raced — under the race detector, five times each. Any flake here
# is a real ordering bug, not noise: the suites are seeded and
# deterministic by construction.
test-flaky:
	$(GO) test -race -count 5 -run 'TestReplicated|TestReplica|TestShardedChaos|TestShardedKill' . ./internal/shard

# chaos replays every committed chaos scenario file
# (internal/harness/testdata/scenarios/*.json) under the race detector
# and asserts each scenario's declared expectations: completeness (exact
# vs. which shards may be missing), oracle equivalence, wall-time bounds,
# proactive breaker skips, breaker re-close after revival, and zero
# goroutine leaks. New scenario = new JSON file, not new code — see
# docs/CHAOS.md for the format.
chaos:
	$(GO) test -race -count 1 -run 'TestChaos' ./internal/harness

# cover is the coverage gate CI runs: the full test suite with
# -coverprofile, failing when total statement coverage drops below the
# baseline floor (override with COVER_FLOOR=NN.N).
cover:
	./scripts/coverage.sh

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# lint runs the static analyzers CI enforces (staticcheck, govulncheck).
# Locally the tools may be absent — this target never installs anything;
# it skips gracefully with a note so offline machines stay green, while
# the CI jobs install pinned versions and fail for real.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
	  staticcheck ./...; \
	else \
	  echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
	  govulncheck ./...; \
	else \
	  echo "lint: govulncheck not installed, skipping (CI runs it)"; \
	fi
