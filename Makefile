# Development entry points. CI runs the same commands (.github/workflows).

GO ?= go
DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test race bench bench-smoke smoke fmt vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the tracked hot-path benchmarks (bench/) with -benchmem and
# records the medians as BENCH_<date>.json. Compare two runs with
# benchstat, or diff the JSON against BENCH_baseline.json — see
# docs/PERFORMANCE.md.
# Two steps, not a pipeline: a failing benchmark run must fail make
# instead of feeding partial output to benchjson.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 6 ./bench > bench.out.tmp
	$(GO) run ./cmd/benchjson < bench.out.tmp > BENCH_$(DATE).json
	@rm -f bench.out.tmp
	@echo wrote BENCH_$(DATE).json

# bench-smoke is the CI guard: every benchmark in the repository must at
# least execute (one iteration), so bit-rotted benchmarks fail the build.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# smoke is the end-to-end check CI runs: real binaries, real TCP, real
# signals (boot two spatialserve, join, SIGTERM drain).
smoke:
	./scripts/smoke.sh

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
