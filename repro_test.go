package repro

import (
	"testing"
)

func newTestSession(t *testing.T, cfg SessionConfig) *Session {
	t.Helper()
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

func TestSessionDistanceJoinMatchesOracle(t *testing.T) {
	r := GaussianClusters(300, 4, 250, World, 1)
	s := GaussianClusters(300, 4, 250, World, 2)
	sess := newTestSession(t, SessionConfig{R: r, S: s, Buffer: 400})
	spec := Spec{Kind: Distance, Eps: 120}
	res, err := sess.Run(UpJoin{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := Oracle(r, s, spec, World)
	if len(res.Pairs) != len(want.Pairs) {
		t.Fatalf("got %d pairs, oracle %d", len(res.Pairs), len(want.Pairs))
	}
}

func TestSessionRunsAreIndependentlyMetered(t *testing.T) {
	r := GaussianClusters(200, 2, 250, World, 3)
	s := GaussianClusters(200, 2, 250, World, 3)
	sess := newTestSession(t, SessionConfig{R: r, S: s, Buffer: 400})
	spec := Spec{Kind: Distance, Eps: 100}
	a, err := sess.Run(SrJoin{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Run(SrJoin{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.TotalBytes() != b.Stats.TotalBytes() {
		t.Fatalf("identical runs should meter identically: %d vs %d",
			a.Stats.TotalBytes(), b.Stats.TotalBytes())
	}
}

func TestSessionAsymmetricTariffs(t *testing.T) {
	r := GaussianClusters(200, 2, 250, World, 5)
	s := GaussianClusters(200, 2, 250, World, 5)
	sess := newTestSession(t, SessionConfig{R: r, S: s, Buffer: 400, PriceR: 10, PriceS: 1})
	res, err := sess.Run(UpJoin{}, Spec{Kind: Distance, Eps: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	wantCost := 10*float64(st.R.WireBytes) + 1*float64(st.S.WireBytes)
	if st.MoneyCost != wantCost {
		t.Fatalf("money cost %v, want %v", st.MoneyCost, wantCost)
	}
}

func TestSessionIceberg(t *testing.T) {
	r := GaussianClusters(150, 2, 300, World, 7)
	s := GaussianClusters(600, 2, 300, World, 7)
	spec := Spec{Kind: IcebergSemi, Eps: 200, MinMatches: 5}
	sess := newTestSession(t, SessionConfig{R: r, S: s, Buffer: 500})
	res, err := sess.Run(UpJoin{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := Oracle(r, s, spec, World)
	if len(res.Objects) != len(want.Objects) {
		t.Fatalf("got %d objects, oracle %d", len(res.Objects), len(want.Objects))
	}
}

func TestSessionSemiJoinNeedsPublishedIndexes(t *testing.T) {
	r := Uniform(100, World, 8)
	s := Uniform(100, World, 9)
	sess := newTestSession(t, SessionConfig{R: r, S: s, Buffer: 400})
	if _, err := sess.Run(SemiJoin{}, Spec{Kind: Distance, Eps: 100}); err == nil {
		t.Fatal("semiJoin without PublishIndexes should fail")
	}
	sess2 := newTestSession(t, SessionConfig{R: r, S: s, Buffer: 400, PublishIndexes: true})
	res, err := sess2.Run(SemiJoin{}, Spec{Kind: Distance, Eps: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := Oracle(r, s, Spec{Kind: Distance, Eps: 100}, World)
	if len(res.Pairs) != len(want.Pairs) {
		t.Fatalf("semiJoin got %d pairs, oracle %d", len(res.Pairs), len(want.Pairs))
	}
}

func TestSessionParallelismMatchesSequential(t *testing.T) {
	r := GaussianClusters(400, 4, 250, World, 11)
	s := GaussianClusters(400, 4, 250, World, 12)
	spec := Spec{Kind: Distance, Eps: 120}
	for _, alg := range []Algorithm{Naive{}, Grid{}, MobiJoin{}, UpJoin{}, SrJoin{}, Auto{}} {
		seqSess := newTestSession(t, SessionConfig{R: r, S: s, Buffer: 300})
		seq, err := seqSess.Run(alg, spec)
		if err != nil {
			t.Fatalf("%s sequential: %v", alg.Name(), err)
		}
		parSess := newTestSession(t, SessionConfig{R: r, S: s, Buffer: 300, Parallelism: 4})
		par, err := parSess.Run(alg, spec)
		if err != nil {
			t.Fatalf("%s parallel: %v", alg.Name(), err)
		}
		if len(seq.Pairs) != len(par.Pairs) {
			t.Fatalf("%s: parallel %d pairs, sequential %d", alg.Name(), len(par.Pairs), len(seq.Pairs))
		}
		for i := range seq.Pairs {
			if seq.Pairs[i] != par.Pairs[i] {
				t.Fatalf("%s: pair %d differs", alg.Name(), i)
			}
		}
		if seq.Stats.TotalBytes() != par.Stats.TotalBytes() {
			t.Fatalf("%s: parallel metered %d bytes, sequential %d",
				alg.Name(), par.Stats.TotalBytes(), seq.Stats.TotalBytes())
		}
	}
}

func TestSessionNilAlgorithm(t *testing.T) {
	sess := newTestSession(t, SessionConfig{R: nil, S: nil})
	if _, err := sess.Run(nil, Spec{Kind: Distance, Eps: 1}); err == nil {
		t.Fatal("nil algorithm should error")
	}
}

func TestFacadeHelpers(t *testing.T) {
	p := Pt(1, 2)
	if p.X != 1 || p.Y != 2 {
		t.Fatal("Pt broken")
	}
	rect := R(3, 4, 1, 2)
	if !rect.Valid() || rect.MinX != 1 {
		t.Fatal("R should normalize corners")
	}
	o := PointObject(9, p)
	if o.ID != 9 || !o.IsPoint() {
		t.Fatal("PointObject broken")
	}
	if DefaultRailway().Segments != 35000 {
		t.Fatal("DefaultRailway should target 35K segments")
	}
	if sess := newTestSession(t, SessionConfig{}); sess.Env() == nil {
		t.Fatal("Env accessor")
	}
}
