package repro

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestServerMultiTenantMatchesOracle: several tenants join concurrently
// over one shared fleet; every tenant's result is oracle-exact, and the
// fleet's accounting stays exhaustive — the tenants' attributed wire
// bytes (plus the anonymous lane) sum to the links' totals, and the
// ledger carries the same spend.
func TestServerMultiTenantMatchesOracle(t *testing.T) {
	r := GaussianClusters(300, 4, 250, World, 21)
	s := GaussianClusters(300, 4, 250, World, 22)
	spec := Spec{Kind: Distance, Eps: 120}
	want := Oracle(r, s, spec, World)

	srv := newTestServer(t, ServerConfig{
		Fleet: SessionConfig{R: r, S: s, Buffer: 400},
		Tenants: map[TenantID]TenantConfig{
			"alice": {Priority: 1, Weight: 2},
			"bob":   {Weight: 1},
			"carol": {Weight: 3},
		},
	})

	var wg sync.WaitGroup
	results := make(map[TenantID]*Result)
	errs := make(map[TenantID]error)
	var mu sync.Mutex
	for _, id := range srv.Tenants() {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := srv.Run(context.Background(), id, UpJoin{}, spec)
			mu.Lock()
			results[id], errs[id] = res, err
			mu.Unlock()
		}()
	}
	wg.Wait()

	for id, err := range errs {
		if err != nil {
			t.Fatalf("tenant %s: %v", id, err)
		}
	}
	for id, res := range results {
		if len(res.Pairs) != len(want.Pairs) {
			t.Errorf("tenant %s: %d pairs, oracle %d", id, len(res.Pairs), len(want.Pairs))
		}
		// Each tenant's Stats cover its own attributed slice, not the
		// fleet's total.
		if res.Stats.TotalBytes() <= 0 {
			t.Errorf("tenant %s: no attributed traffic in Stats", id)
		}
	}

	// Exhaustiveness: the ledger's per-tenant spend must sum to the wire
	// bytes the shared links actually metered.
	env, err := srv.Env("alice")
	if err != nil {
		t.Fatal(err)
	}
	fleetWire := srv.fleet.remR.Usage().WireBytes + srv.fleet.remS.Usage().WireBytes
	var ledgerSum int64
	for _, id := range append(srv.Tenants(), TenantID("")) {
		ledgerSum += srv.Spent(id)
	}
	if ledgerSum != int64(fleetWire) {
		t.Errorf("ledger spend %d, fleet wire bytes %d", ledgerSum, fleetWire)
	}
	_ = env
}

// TestServerQuotaRejectsTenantOthersComplete is the acceptance scenario:
// a tenant with a tiny byte quota is eventually rejected with the typed
// quota error while an unlimited tenant's concurrent joins keep
// completing oracle-exact.
func TestServerQuotaRejectsTenantOthersComplete(t *testing.T) {
	r := GaussianClusters(250, 3, 250, World, 31)
	s := GaussianClusters(250, 3, 250, World, 32)
	spec := Spec{Kind: Distance, Eps: 100}
	want := Oracle(r, s, spec, World)

	srv := newTestServer(t, ServerConfig{
		Fleet: SessionConfig{R: r, S: s, Buffer: 400},
		Tenants: map[TenantID]TenantConfig{
			"rich": {},
			"poor": {ByteQuota: 4000},
		},
	})

	// Run both tenants concurrently until poor's quota trips.
	var poorErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if _, err := srv.Run(context.Background(), "poor", UpJoin{}, spec); err != nil {
				poorErr = err
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		res, err := srv.Run(context.Background(), "rich", UpJoin{}, spec)
		if err != nil {
			t.Fatalf("rich run %d: %v", i, err)
		}
		if len(res.Pairs) != len(want.Pairs) {
			t.Fatalf("rich run %d: %d pairs, oracle %d", i, len(res.Pairs), len(want.Pairs))
		}
	}
	<-done

	if poorErr == nil {
		t.Fatal("poor tenant never hit its 4000-byte quota")
	}
	if !errors.Is(poorErr, ErrOverQuota) {
		t.Fatalf("poor rejection does not match ErrOverQuota: %v", poorErr)
	}
	var qe *QuotaError
	if !errors.As(poorErr, &qe) {
		t.Fatalf("poor rejection is not a typed *QuotaError: %v", poorErr)
	}
	if qe.Tenant != "poor" || qe.Quota != 4000 || qe.Spent < qe.Quota {
		t.Errorf("QuotaError = %+v, want tenant poor at/over quota 4000", *qe)
	}
	// Further admissions stay rejected.
	if _, err := srv.Run(context.Background(), "poor", UpJoin{}, spec); !errors.Is(err, ErrOverQuota) {
		t.Errorf("post-exhaustion run: err = %v, want ErrOverQuota", err)
	}
	// And rich still serves.
	if _, err := srv.Run(context.Background(), "rich", UpJoin{}, spec); err != nil {
		t.Errorf("rich after poor's exhaustion: %v", err)
	}
}

// TestServerUnknownTenant: undeclared tenants are rejected with the
// typed sentinel before any work starts.
func TestServerUnknownTenant(t *testing.T) {
	r := Uniform(50, World, 41)
	srv := newTestServer(t, ServerConfig{
		Fleet:   SessionConfig{R: r, S: r, Buffer: 200},
		Tenants: map[TenantID]TenantConfig{"a": {}},
	})
	if _, err := srv.Run(context.Background(), "mallory", UpJoin{}, Spec{Kind: Distance, Eps: 10}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
	if _, err := srv.Env("mallory"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Env: err = %v, want ErrUnknownTenant", err)
	}
	if _, err := NewServer(ServerConfig{Fleet: SessionConfig{R: r, S: r}}); err == nil {
		t.Fatal("NewServer with no tenants should fail")
	}
}

// blockingAlg parks until released, so tests can hold a tenant's
// concurrency slot at a precise point.
type blockingAlg struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockingAlg) Name() string { return "blocking" }

func (b *blockingAlg) Run(ctx context.Context, env *core.Env, spec core.Spec) (*core.Result, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		return &core.Result{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestServerMaxConcurrentGates: a tenant at its MaxConcurrent blocks
// further Runs until a slot frees (or the waiter's context ends), while
// other tenants are unaffected.
func TestServerMaxConcurrentGates(t *testing.T) {
	r := Uniform(60, World, 43)
	srv := newTestServer(t, ServerConfig{
		Fleet: SessionConfig{R: r, S: r, Buffer: 200},
		Tenants: map[TenantID]TenantConfig{
			"gated": {MaxConcurrent: 1},
			"free":  {},
		},
	})
	alg := &blockingAlg{started: make(chan struct{}, 1), release: make(chan struct{})}

	firstDone := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background(), "gated", alg, Spec{Kind: Distance, Eps: 10})
		firstDone <- err
	}()
	<-alg.started // the slot is now held

	// A second gated run must not start while the slot is held: its
	// context expires in the admission queue.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := srv.Run(ctx, "gated", UpJoin{}, Spec{Kind: Distance, Eps: 10}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gated waiter: err = %v, want DeadlineExceeded", err)
	}
	// Another tenant is untouched by the gate.
	if _, err := srv.Run(context.Background(), "free", UpJoin{}, Spec{Kind: Distance, Eps: 10}); err != nil {
		t.Fatalf("free tenant blocked by sibling's gate: %v", err)
	}

	close(alg.release)
	if err := <-firstDone; err != nil {
		t.Fatalf("gated run: %v", err)
	}
	// Slot released: the tenant admits again.
	if _, err := srv.Run(context.Background(), "gated", UpJoin{}, Spec{Kind: Distance, Eps: 10}); err != nil {
		t.Fatalf("post-release run: %v", err)
	}
}

// TestServerTenantUsageAttribution: per-tenant usage on the server is
// non-zero for active tenants, zero for idle ones, and consistent with
// the tenant's own Stats.
func TestServerTenantUsageAttribution(t *testing.T) {
	r := GaussianClusters(200, 2, 250, World, 51)
	s := GaussianClusters(200, 2, 250, World, 52)
	srv := newTestServer(t, ServerConfig{
		Fleet: SessionConfig{R: r, S: s, Buffer: 400},
		Tenants: map[TenantID]TenantConfig{
			"worker": {},
			"idle":   {},
		},
	})
	res, err := srv.Run(context.Background(), "worker", SrJoin{}, Spec{Kind: Distance, Eps: 100})
	if err != nil {
		t.Fatal(err)
	}
	ru, su := srv.TenantUsage("worker")
	if ru.WireBytes == 0 || su.WireBytes == 0 {
		t.Fatalf("worker attribution empty: R %+v S %+v", ru, su)
	}
	// The run's Stats diff the tenant's own attributed columns, so the
	// cumulative attribution covers at least the run's traffic.
	if ru.WireBytes < res.Stats.R.WireBytes || su.WireBytes < res.Stats.S.WireBytes {
		t.Errorf("attribution below the run's own Stats: R %d<%d S %d<%d",
			ru.WireBytes, res.Stats.R.WireBytes, su.WireBytes, res.Stats.S.WireBytes)
	}
	iru, isu := srv.TenantUsage("idle")
	if iru.WireBytes != 0 || isu.WireBytes != 0 {
		t.Errorf("idle tenant has attributed traffic: R %+v S %+v", iru, isu)
	}
	if ids := srv.Tenants(); !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Errorf("Tenants() not sorted: %v", ids)
	}
	if spent := srv.Spent("worker"); spent != int64(ru.WireBytes+su.WireBytes) {
		t.Errorf("ledger spend %d, attributed wire %d", spent, ru.WireBytes+su.WireBytes)
	}
}

// TestServerClosedRejects: Run and Env fail after Close, and Close is
// idempotent.
func TestServerClosedRejects(t *testing.T) {
	r := Uniform(40, World, 61)
	srv := newTestServer(t, ServerConfig{
		Fleet:   SessionConfig{R: r, S: r, Buffer: 200},
		Tenants: map[TenantID]TenantConfig{"a": {}},
	})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := srv.Run(context.Background(), "a", UpJoin{}, Spec{Kind: Distance, Eps: 10}); err == nil {
		t.Fatal("Run on closed server should fail")
	}
}

// TestServerHighPriorityLatencyUnderLoad is the serving-quality
// acceptance check: with eight low-priority bulk sessions saturating the
// shared fleet, a high-priority tenant's probe p99 stays within 1.5× of
// its unloaded baseline (plus a small constant guard against scheduler
// jitter on loaded CI machines) — the strict-priority tiers put its
// probes at the front of every envelope.
func TestServerHighPriorityLatencyUnderLoad(t *testing.T) {
	if raceEnabled {
		t.Skip("latency assertion is meaningless under the race detector's overhead")
	}
	if testing.Short() {
		t.Skip("latency measurement skipped in -short")
	}
	r := GaussianClusters(400, 4, 250, World, 71)
	s := GaussianClusters(400, 4, 250, World, 72)
	tenants := map[TenantID]TenantConfig{
		"interactive": {Priority: 10},
	}
	for _, id := range bulkTenants() {
		tenants[id] = TenantConfig{Priority: 0}
	}
	srv := newTestServer(t, ServerConfig{
		Fleet: SessionConfig{
			R: r, S: s, Buffer: 400, Parallelism: 4,
			Link: LinkConfig{MTU: 1500, HeaderBytes: 40, RTT: 2 * time.Millisecond},
		},
		Tenants: tenants,
	})
	env, err := srv.Env("interactive")
	if err != nil {
		t.Fatal(err)
	}
	probe := func() time.Duration {
		t0 := time.Now()
		if _, err := env.R.Count(context.Background(), World); err != nil {
			t.Fatalf("interactive probe: %v", err)
		}
		return time.Since(t0)
	}
	p99 := func(n int) time.Duration {
		lat := make([]time.Duration, n)
		for i := range lat {
			lat[i] = probe()
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[(n*99+99)/100-1]
	}

	for i := 0; i < 10; i++ { // warm transports, pools, and the scheduler
		probe()
	}
	solo := p99(200)

	// Eight bulk tenants hammer the fleet with distance joins until told
	// to stop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range bulkTenants() {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, _ = srv.Run(ctx, id, UpJoin{}, Spec{Kind: Distance, Eps: 120})
				cancel()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the bulk load build a backlog
	loaded := p99(200)
	close(stop)
	wg.Wait()

	// 1.5× the solo p99 plus two RTTs of guard: the strict tier means an
	// interactive probe waits at most for frames already in flight,
	// never behind the bulk backlog.
	limit := solo + solo/2 + 4*time.Millisecond
	if loaded > limit {
		t.Errorf("interactive p99 under load = %v, want ≤ %v (solo %v)", loaded, limit, solo)
	}
	t.Logf("interactive p99: solo %v, loaded %v", solo, loaded)
}

func bulkTenants() []TenantID {
	return []TenantID{"bulk0", "bulk1", "bulk2", "bulk3", "bulk4", "bulk5", "bulk6", "bulk7"}
}
