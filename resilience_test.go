package repro

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNewSessionRejectsInvalidLink(t *testing.T) {
	_, err := NewSession(SessionConfig{
		R: GaussianClusters(10, 1, 10, World, 1),
		S: GaussianClusters(10, 1, 10, World, 2),
		// MTU below the header size: Eq. (1) is undefined. This used to
		// panic deep in the meter; it must surface here instead.
		Link: LinkConfig{MTU: 10, HeaderBytes: 40},
	})
	if err == nil {
		t.Fatal("invalid link must fail NewSession")
	}
}

func TestRunContextCancellation(t *testing.T) {
	sess, err := NewSession(SessionConfig{
		R:      GaussianClusters(500, 4, 250, World, 1),
		S:      GaussianClusters(500, 4, 250, World, 2),
		Buffer: 400,
		// A simulated 10ms RTT makes the join take long enough that the
		// cancellation provably lands mid-run.
		Link: LinkConfig{MTU: 1500, HeaderBytes: 40, RTT: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sess.RunContext(ctx, UpJoin{}, Spec{Kind: Distance, Eps: 75})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 1 RTT + slack", elapsed)
	}
}

func TestSessionRunTimeout(t *testing.T) {
	sess, err := NewSession(SessionConfig{
		R:          GaussianClusters(500, 4, 250, World, 3),
		S:          GaussianClusters(500, 4, 250, World, 4),
		Buffer:     400,
		Link:       LinkConfig{MTU: 1500, HeaderBytes: 40, RTT: 10 * time.Millisecond},
		RunTimeout: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	start := time.Now()
	_, err = sess.Run(UpJoin{}, Spec{Kind: Distance, Eps: 75})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("RunTimeout fired after %v", elapsed)
	}
}

func TestSessionRetryKnobKeepsFailureFreeRunsIdentical(t *testing.T) {
	mk := func(retry RetryPolicy) *Result {
		sess, err := NewSession(SessionConfig{
			R:      GaussianClusters(400, 4, 250, World, 5),
			S:      GaussianClusters(400, 4, 250, World, 6),
			Buffer: 400, Seed: 9, Retry: retry,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Run(UpJoin{}, Spec{Kind: Distance, Eps: 75})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := mk(RetryPolicy{})
	retried := mk(DefaultRetry())
	if plain.Stats.TotalBytes() != retried.Stats.TotalBytes() {
		t.Fatalf("retry policy changed failure-free accounting: %d vs %d",
			plain.Stats.TotalBytes(), retried.Stats.TotalBytes())
	}
	if len(plain.Pairs) != len(retried.Pairs) {
		t.Fatalf("retry policy changed failure-free results")
	}
}
